// Package classic implements the traditional MPI micro-benchmarks the paper
// positions itself against (§5): OSU/SMB-style ping-pong latency, windowed
// streaming bandwidth, bidirectional bandwidth and message rate, the
// Thakur–Gropp multithreaded latency test, and a message-matching
// queue-depth stress after Schonbein et al. — plus the partitioned variants
// those suites lack, which is exactly the gap the paper's suite fills.
//
// All benchmarks run on the simulated cluster and report virtual-time
// results, deterministic for a given configuration.
package classic

import (
	"context"
	"fmt"

	"partmb/internal/cluster"
	"partmb/internal/engine"
	"partmb/internal/memsim"
	"partmb/internal/mpi"
	"partmb/internal/platform"
	"partmb/internal/sim"
	"partmb/internal/stats"
)

// Config holds the shared benchmark parameters.
type Config struct {
	// Iterations is the number of measured repetitions per point.
	Iterations int
	// Warmup iterations run first and are discarded.
	Warmup int
	// Platform bundles the hardware models (nil = the paper's Niagara/EDR
	// defaults). Each benchmark picks its own MPI thread mode, so the
	// spec's ThreadMode is ignored here.
	Platform *platform.Spec
	// Adaptive, when non-nil, replaces the fixed Iterations count with
	// confidence-targeted sampling: each point draws single-iteration runs
	// under derived seeds until the value's confidence interval meets the
	// target (or the sample budget runs out), and Point carries the
	// estimate. Nil keeps the fixed path and its cache keys byte-identical.
	Adaptive *stats.RunConfig `json:",omitempty"`
}

// DefaultConfig returns OSU-like iteration counts.
func DefaultConfig() Config {
	return Config{Iterations: 100, Warmup: 10}
}

func (c Config) withDefaults() Config {
	if c.Iterations == 0 {
		c.Iterations = 100
	}
	c.Platform = c.Platform.Resolved()
	return c
}

func (c *Config) validate() error {
	if c.Iterations <= 0 || c.Warmup < 0 {
		return fmt.Errorf("classic: Iterations must be positive and Warmup non-negative")
	}
	return c.Platform.Validate()
}

// Point is one (message size, value) result; Value's unit depends on the
// benchmark (seconds for latency, bytes/second for bandwidth).
type Point struct {
	Size  int64
	Value float64
	// CI is the confidence estimate of Value on adaptive runs (nil on the
	// fixed-rep path, keeping fixed-path JSON byte-identical).
	CI *stats.Estimate `json:",omitempty"`
}

// SampleStats implements the observability layer's Sampled interface (see
// internal/obs). Fixed-rep points report n == 0.
func (p Point) SampleStats() (n int, relCI float64, reason string) {
	if p.CI == nil {
		return 0, 0, ""
	}
	return p.CI.N, p.CI.RelHalfWidth, p.CI.Reason
}

// world builds a 2-rank world.
func (c Config) world(s *sim.Scheduler, mode mpi.ThreadMode) *mpi.World {
	mcfg := mpi.DefaultConfig(2)
	mcfg.Net = c.Platform.Net
	mcfg.Machine = c.Platform.Machine
	mcfg.Mem = memsim.Default(c.Platform.Cache)
	mcfg.ThreadMode = mode
	return mpi.NewWorld(s, mcfg)
}

// sweepPoints runs one benchmark point per size on the runner's worker pool,
// memoizing each (benchmark, config, size, args...) cell. A nil runner uses
// the shared default runner. With cfg.Adaptive set, each point samples
// adaptively (the adaptive config participates in the key, so adaptive and
// fixed cells never alias).
func sweepPoints(rn *engine.Runner, what string, cfg Config, sizes []int64,
	one func(Config, int64) (float64, error), extra ...any) ([]Point, error) {
	r := engine.OrDefault(rn)
	// Cold-cost heuristic for LPT dispatch: classic point cost scales with
	// the message size.
	r.SetCostHint(func(i int) float64 { return float64(sizes[i]) })
	vals, err := r.Map(context.Background(), len(sizes), func(ctx context.Context, i int) (any, error) {
		size := sizes[i]
		key, kerr := engine.Key(append([]any{what, cfg, size}, extra...)...)
		if kerr != nil {
			key = ""
		}
		if cfg.Adaptive != nil {
			if cfg.Adaptive.Budget > 0 {
				key = "" // budget stops depend on host speed; never memoize
			}
			pt, err := engine.DoAs(r, key, func() (Point, error) {
				return adaptivePoint(cfg, size, one)
			})
			if err != nil {
				return nil, fmt.Errorf("%s: size %s: %w", what, FormatSize(size), err)
			}
			return pt, nil
		}
		v, err := engine.DoAs(r, key, func() (float64, error) { return one(cfg, size) })
		if err != nil {
			return nil, fmt.Errorf("%s: size %s: %w", what, FormatSize(size), err)
		}
		return Point{Size: size, Value: v}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(sizes))
	for i, v := range vals {
		out[i] = v.(Point)
		out[i].Size = sizes[i]
	}
	return out, nil
}

// adaptivePoint estimates one benchmark point by drawing single-iteration
// runs under seeds derived from the platform seed (stats.DeriveSeed) until
// the sampler declares the estimate tight — classic sims are deterministic
// per seed, so a quiet benchmark converges at MinSamples draws instead of
// burning the fixed OSU-style iteration count. The reported Value is the
// sample mean, with the full estimate attached.
func adaptivePoint(cfg Config, size int64, one func(Config, int64) (float64, error)) (Point, error) {
	rc := *cfg.Adaptive
	s := stats.NewSampler(rc)
	for draw := 0; !s.Done(); draw++ {
		sub := cfg
		sub.Adaptive = nil
		sub.Iterations = 1
		sub.Platform = cfg.Platform.WithSeed(stats.DeriveSeed(cfg.Platform.Seed, draw))
		v, err := one(sub, size)
		if err != nil {
			return Point{}, fmt.Errorf("adaptive draw %d: %w", draw, err)
		}
		s.Add(v)
	}
	est := s.Estimate()
	return Point{Size: size, Value: est.Mean, CI: &est}, nil
}

// cachedDuration memoizes a single-point duration benchmark on the runner's
// cache.
func cachedDuration(rn *engine.Runner, what string, cfg Config, a int, b int64, run func() (sim.Duration, error)) (sim.Duration, error) {
	key, err := engine.Key(what, cfg, a, b)
	if err != nil {
		key = ""
	}
	return engine.DoAs(engine.OrDefault(rn), key, run)
}

// FormatSize renders a byte count in the compact power-of-two form used in
// error messages and tables.
func FormatSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Latency runs the ping-pong latency benchmark (osu_latency): half the
// average round-trip time per size, in seconds. Sizes run in parallel on the
// runner's worker pool (nil = the shared default runner).
func Latency(rn *engine.Runner, cfg Config, sizes []int64) ([]Point, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return sweepPoints(rn, "classic.Latency", cfg, sizes, latencyAt)
}

func latencyAt(cfg Config, size int64) (float64, error) {
	s := sim.New()
	w := cfg.world(s, mpi.Funneled)
	var span sim.Duration
	total := cfg.Warmup + cfg.Iterations
	s.Spawn("ping", func(p *sim.Proc) {
		c := w.Comm(0)
		c.Barrier(p)
		for it := 0; it < total; it++ {
			if it == cfg.Warmup {
				span = -sim.Duration(p.Now())
			}
			c.SendBytes(p, 1, 0, size)
			c.Recv(p, 1, 1)
		}
		span += sim.Duration(p.Now())
	})
	s.Spawn("pong", func(p *sim.Proc) {
		c := w.Comm(1)
		c.Barrier(p)
		for it := 0; it < total; it++ {
			c.Recv(p, 0, 0)
			c.SendBytes(p, 0, 1, size)
		}
	})
	if err := s.Run(); err != nil {
		return 0, err
	}
	return span.Seconds() / float64(cfg.Iterations) / 2, nil
}

// Bandwidth runs the windowed streaming bandwidth benchmark (osu_bw): the
// sender posts `window` nonblocking sends, the receiver pre-posts matching
// receives, and a short ack closes each window. Bytes/second per size.
func Bandwidth(rn *engine.Runner, cfg Config, sizes []int64, window int) ([]Point, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if window <= 0 {
		return nil, fmt.Errorf("classic: window must be positive")
	}
	return sweepPoints(rn, "classic.Bandwidth", cfg, sizes, func(cfg Config, size int64) (float64, error) {
		return bandwidthAt(cfg, size, window)
	}, window)
}

func bandwidthAt(cfg Config, size int64, window int) (float64, error) {
	s := sim.New()
	w := cfg.world(s, mpi.Funneled)
	var span sim.Duration
	total := cfg.Warmup + cfg.Iterations
	s.Spawn("sender", func(p *sim.Proc) {
		c := w.Comm(0)
		c.Barrier(p)
		for it := 0; it < total; it++ {
			if it == cfg.Warmup {
				span = -sim.Duration(p.Now())
			}
			reqs := make([]*mpi.Request, window)
			for i := range reqs {
				reqs[i] = c.IsendBytes(p, 1, i, size)
			}
			mpi.WaitAll(p, reqs...)
			c.Recv(p, 1, 999) // window ack
		}
		span += sim.Duration(p.Now())
	})
	s.Spawn("recv", func(p *sim.Proc) {
		c := w.Comm(1)
		c.Barrier(p)
		for it := 0; it < total; it++ {
			reqs := make([]*mpi.Request, window)
			for i := range reqs {
				reqs[i] = c.Irecv(p, 0, i)
			}
			mpi.WaitAll(p, reqs...)
			c.SendBytes(p, 0, 999, 0)
		}
	})
	if err := s.Run(); err != nil {
		return 0, err
	}
	bytes := float64(cfg.Iterations) * float64(window) * float64(size)
	return bytes / span.Seconds(), nil
}

// BiBandwidth runs the bidirectional bandwidth benchmark (osu_bibw): both
// ranks stream windows at each other simultaneously. Aggregate bytes/second.
func BiBandwidth(rn *engine.Runner, cfg Config, sizes []int64, window int) ([]Point, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if window <= 0 {
		return nil, fmt.Errorf("classic: window must be positive")
	}
	return sweepPoints(rn, "classic.BiBandwidth", cfg, sizes, func(cfg Config, size int64) (float64, error) {
		return biBandwidthAt(cfg, size, window)
	}, window)
}

func biBandwidthAt(cfg Config, size int64, window int) (float64, error) {
	s := sim.New()
	w := cfg.world(s, mpi.Funneled)
	var span sim.Duration
	total := cfg.Warmup + cfg.Iterations
	side := func(rank int) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			c := w.Comm(rank)
			other := 1 - rank
			c.Barrier(p)
			for it := 0; it < total; it++ {
				if rank == 0 && it == cfg.Warmup {
					span = -sim.Duration(p.Now())
				}
				reqs := make([]*mpi.Request, 0, 2*window)
				for i := 0; i < window; i++ {
					reqs = append(reqs, c.Irecv(p, other, 100+i))
				}
				for i := 0; i < window; i++ {
					reqs = append(reqs, c.IsendBytes(p, other, 100+i, size))
				}
				mpi.WaitAll(p, reqs...)
				if rank == 0 && it == total-1 {
					span += sim.Duration(p.Now())
				}
			}
		}
	}
	s.Spawn("r0", side(0))
	s.Spawn("r1", side(1))
	if err := s.Run(); err != nil {
		return 0, err
	}
	bytes := 2 * float64(cfg.Iterations) * float64(window) * float64(size)
	return bytes / span.Seconds(), nil
}

// MessageRate runs the small-message rate benchmark (osu_mbw_mr's rate
// side, one pair): messages per second at the given size and window.
func MessageRate(rn *engine.Runner, cfg Config, size int64, window int) (float64, error) {
	pts, err := Bandwidth(rn, cfg, []int64{size}, window)
	if err != nil {
		return 0, err
	}
	if size == 0 {
		return 0, fmt.Errorf("classic: message rate needs a positive size")
	}
	return pts[0].Value / float64(size), nil
}

// ThreadLatency runs the Thakur–Gropp multithreaded latency test: `threads`
// concurrent ping-pong pairs between two ranks under MPI_THREAD_MULTIPLE.
// It returns the average per-message half round trip, which grows with the
// thread count as the library lock contends — the effect partitioned
// communication avoids.
func ThreadLatency(rn *engine.Runner, cfg Config, threads int, size int64) (sim.Duration, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if threads <= 0 {
		return 0, fmt.Errorf("classic: threads must be positive")
	}
	return cachedDuration(rn, "classic.ThreadLatency", cfg, threads, size, func() (sim.Duration, error) {
		return threadLatencyAt(cfg, threads, size)
	})
}

func threadLatencyAt(cfg Config, threads int, size int64) (sim.Duration, error) {
	s := sim.New()
	w := cfg.world(s, mpi.Multiple)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.SetPlacement(cluster.Place(cfg.Platform.Machine, threads))
	c1.SetPlacement(cluster.Place(cfg.Platform.Machine, threads))
	total := cfg.Warmup + cfg.Iterations
	var start, end sim.Time
	startBar := sim.NewBarrier(2 * threads)
	var done sim.WaitGroup
	done.Add(s, 2*threads)
	for t := 0; t < threads; t++ {
		t := t
		s.Spawn(fmt.Sprintf("ping%d", t), func(p *sim.Proc) {
			ep := c0.Endpoint(t)
			startBar.Await(p)
			if t == 0 {
				start = p.Now()
			}
			for it := 0; it < total; it++ {
				ep.SendBytes(p, 1, 2*t, size)
				ep.Recv(p, 1, 2*t+1)
			}
			if p.Now() > end {
				end = p.Now()
			}
			done.Done(s)
		})
		s.Spawn(fmt.Sprintf("pong%d", t), func(p *sim.Proc) {
			ep := c1.Endpoint(t)
			startBar.Await(p)
			for it := 0; it < total; it++ {
				ep.Recv(p, 0, 2*t)
				ep.SendBytes(p, 0, 2*t+1, size)
			}
			done.Done(s)
		})
	}
	s.Spawn("join", func(p *sim.Proc) { done.Wait(p) })
	if err := s.Run(); err != nil {
		return 0, err
	}
	span := end.Sub(start)
	// Per-message half round trip, averaged over every pair's traffic.
	return span / sim.Duration(2*total), nil
}

// MatchStress measures the receive-posting cost behind an unexpected queue
// of the given depth (after Schonbein et al.'s matching benchmark): the
// returned duration is the time Irecv spends searching the queue.
func MatchStress(rn *engine.Runner, cfg Config, depth int) (sim.Duration, error) {
	cfg = cfg.withDefaults()
	if depth < 0 {
		return 0, fmt.Errorf("classic: negative depth")
	}
	return cachedDuration(rn, "classic.MatchStress", cfg, depth, 0, func() (sim.Duration, error) {
		return matchStressAt(cfg, depth)
	})
}

func matchStressAt(cfg Config, depth int) (sim.Duration, error) {
	s := sim.New()
	w := cfg.world(s, mpi.Funneled)
	var took sim.Duration
	s.Spawn("sender", func(p *sim.Proc) {
		c := w.Comm(0)
		for i := 0; i < depth; i++ {
			c.SendBytes(p, 1, 1000+i, 8) // never-matched junk
		}
		c.SendBytes(p, 1, 7, 8) // the probe message
	})
	s.Spawn("recv", func(p *sim.Proc) {
		c := w.Comm(1)
		p.Sleep(sim.Millisecond) // let everything land unexpected
		before := p.Now()
		r := c.Irecv(p, 0, 7)
		took = p.Now().Sub(before)
		r.Wait(p)
		for i := 0; i < depth; i++ {
			c.Recv(p, 0, 1000+i)
		}
	})
	if err := s.Run(); err != nil {
		return 0, err
	}
	return took, nil
}

// PartLatency is the partitioned ping-pong the classic suites lack: one
// epoch of an n-partition transfer each way per iteration. It returns the
// average one-way epoch time (Start+Pready*+Wait on the sender, Start+Wait
// on the receiver).
func PartLatency(rn *engine.Runner, cfg Config, size int64, parts int) (sim.Duration, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if parts <= 0 || size%int64(parts) != 0 {
		return 0, fmt.Errorf("classic: %d partitions must divide %d bytes", parts, size)
	}
	return cachedDuration(rn, "classic.PartLatency", cfg, parts, size, func() (sim.Duration, error) {
		return partLatencyAt(cfg, size, parts)
	})
}

func partLatencyAt(cfg Config, size int64, parts int) (sim.Duration, error) {
	s := sim.New()
	w := cfg.world(s, mpi.Multiple)
	partBytes := size / int64(parts)
	var span sim.Duration
	total := cfg.Warmup + cfg.Iterations
	s.Spawn("ping", func(p *sim.Proc) {
		c := w.Comm(0)
		c.SetPlacement(cluster.Place(cfg.Platform.Machine, parts))
		tx := c.PsendInit(p, 1, 0, parts, partBytes)
		rx := c.PrecvInit(p, 1, 1, parts, partBytes)
		c.Barrier(p)
		for it := 0; it < total; it++ {
			if it == cfg.Warmup {
				span = -sim.Duration(p.Now())
			}
			tx.Start(p)
			for i := 0; i < parts; i++ {
				tx.Pready(p, i)
			}
			tx.Wait(p)
			rx.Start(p)
			rx.Wait(p)
		}
		span += sim.Duration(p.Now())
	})
	s.Spawn("pong", func(p *sim.Proc) {
		c := w.Comm(1)
		c.SetPlacement(cluster.Place(cfg.Platform.Machine, parts))
		rx := c.PrecvInit(p, 0, 0, parts, partBytes)
		tx := c.PsendInit(p, 0, 1, parts, partBytes)
		c.Barrier(p)
		for it := 0; it < total; it++ {
			rx.Start(p)
			rx.Wait(p)
			tx.Start(p)
			for i := 0; i < parts; i++ {
				tx.Pready(p, i)
			}
			tx.Wait(p)
		}
	})
	if err := s.Run(); err != nil {
		return 0, err
	}
	return span / sim.Duration(2*cfg.Iterations), nil
}
