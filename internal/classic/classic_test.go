package classic

import (
	"testing"

	"partmb/internal/netsim"
	"partmb/internal/sim"
)

func quickCfg() Config {
	return Config{Iterations: 20, Warmup: 2}
}

func TestLatencyGrowsWithSize(t *testing.T) {
	pts, err := Latency(nil, quickCfg(), []int64{8, 8 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Fatalf("latency not increasing: %v", pts)
		}
	}
	// Small-message half round trip should be a couple of microseconds.
	if small := pts[0].Value; small < 1e-6 || small > 10e-6 {
		t.Fatalf("8B latency = %v s, want O(2us)", small)
	}
}

func TestLatencyMatchesModel(t *testing.T) {
	net := netsim.EDR()
	pts, err := Latency(nil, quickCfg(), []int64{8})
	if err != nil {
		t.Fatal(err)
	}
	// Half round trip ~= o_s + L + o_r + call overheads.
	model := (net.SendOverhead + net.Latency + net.RecvOverhead).Seconds()
	if got := pts[0].Value; got < model || got > 2.5*model {
		t.Fatalf("8B latency %v s, want within ~2x of %v s", got, model)
	}
}

func TestBandwidthApproachesLink(t *testing.T) {
	pts, err := Bandwidth(nil, quickCfg(), []int64{4 << 20}, 16)
	if err != nil {
		t.Fatal(err)
	}
	link := netsim.EDR().Bandwidth
	if got := pts[0].Value; got < 0.9*link || got > 1.01*link {
		t.Fatalf("streaming bandwidth %.3g, want ~%.3g", got, link)
	}
}

func TestBandwidthSmallMessagesOverheadBound(t *testing.T) {
	pts, err := Bandwidth(nil, quickCfg(), []int64{64}, 32)
	if err != nil {
		t.Fatal(err)
	}
	link := netsim.EDR().Bandwidth
	if pts[0].Value > link/10 {
		t.Fatalf("64B bandwidth %.3g unreasonably high", pts[0].Value)
	}
}

func TestBiBandwidthRoughlyDoubles(t *testing.T) {
	uni, err := Bandwidth(nil, quickCfg(), []int64{4 << 20}, 8)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := BiBandwidth(nil, quickCfg(), []int64{4 << 20}, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := bi[0].Value / uni[0].Value
	if ratio < 1.6 || ratio > 2.2 {
		t.Fatalf("bi/uni bandwidth ratio = %.2f, want ~2 (full duplex)", ratio)
	}
}

func TestMessageRate(t *testing.T) {
	rate, err := MessageRate(nil, quickCfg(), 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Bounded by per-message send overhead (500ns) => <= 2M msgs/s.
	if rate < 1e5 || rate > 2.1e6 {
		t.Fatalf("message rate = %.3g msg/s, want O(1e6)", rate)
	}
}

func TestThreadLatencyGrowsWithThreads(t *testing.T) {
	cfg := quickCfg()
	one, err := ThreadLatency(nil, cfg, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := ThreadLatency(nil, cfg, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if eight <= one {
		t.Fatalf("multithreaded latency did not grow: 1t=%v 8t=%v", one, eight)
	}
}

func TestMatchStressGrowsWithDepth(t *testing.T) {
	cfg := quickCfg()
	shallow, err := MatchStress(nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := MatchStress(nil, cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	if deep <= shallow {
		t.Fatalf("matching cost did not grow with depth: 0=%v 200=%v", shallow, deep)
	}
}

func TestPartLatencyOnePartitionNearPt2Pt(t *testing.T) {
	cfg := quickCfg()
	part, err := PartLatency(nil, cfg, 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Latency(nil, cfg, []int64{64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p2p := sim.Duration(pts[0].Value * 1e9)
	ratio := float64(part) / float64(p2p)
	if ratio < 0.8 || ratio > 2.5 {
		t.Fatalf("1-partition epoch %v vs p2p %v: ratio %.2f out of range", part, p2p, ratio)
	}
}

func TestPartLatencyValidation(t *testing.T) {
	if _, err := PartLatency(nil, quickCfg(), 100, 3); err == nil {
		t.Fatal("indivisible partitioning accepted")
	}
	if _, err := PartLatency(nil, quickCfg(), 64, 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	bad := Config{Iterations: -1}
	if _, err := Latency(nil, bad, []int64{8}); err == nil {
		t.Fatal("negative iterations accepted")
	}
	if _, err := Bandwidth(nil, quickCfg(), []int64{8}, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := MatchStress(nil, quickCfg(), -1); err == nil {
		t.Fatal("negative depth accepted")
	}
	if _, err := ThreadLatency(nil, quickCfg(), 0, 8); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := MessageRate(nil, quickCfg(), 0, 8); err == nil {
		t.Fatal("zero size accepted")
	}
}
