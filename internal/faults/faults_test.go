package faults

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"partmb/internal/engine"
	"partmb/internal/sim"
)

func TestParse(t *testing.T) {
	for _, spec := range []string{"", "none", "off", "  NONE  "} {
		in, err := Parse(spec)
		if in != nil || err != nil {
			t.Fatalf("Parse(%q) = %v, %v, want nil, nil", spec, in, err)
		}
	}
	in, err := Parse("drop:0.3")
	if err != nil || in.mode != Drop || in.prob != 0.3 || in.seed != DefaultSeed {
		t.Fatalf("Parse(drop:0.3) = %+v, %v", in, err)
	}
	in, err = Parse("flaky:0.5:7")
	if err != nil || in.mode != FlakyNIC || in.prob != 0.5 || in.seed != 7 {
		t.Fatalf("Parse(flaky:0.5:7) = %+v, %v", in, err)
	}
	if in.String() != "flaky:0.5:7" {
		t.Fatalf("String = %q", in.String())
	}
	for _, bad := range []string{"drop", "drop:x", "drop:1.5", "drop:-0.1", "bogus:0.5", "drop:0.1:zz", "a:0.1:2:3"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"drop": Drop, "delay": DelaySpike, "delay-spike": DelaySpike, "spike": DelaySpike,
		"flaky": FlakyNIC, "flaky-nic": FlakyNIC, "nic": FlakyNIC, " Drop ": Drop,
	} {
		m, err := ParseMode(s)
		if err != nil || m != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := ParseMode("fiber-seeking backhoe"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

// TestInjectorDeterministic: the schedule is a pure function of
// (seed, mode, key, attempt) — repeated queries agree, and the injected
// errors are transient with reproducible messages.
func TestInjectorDeterministic(t *testing.T) {
	for _, mode := range []Mode{Drop, DelaySpike, FlakyNIC} {
		a, _ := New(mode, 0.5, 1)
		b, _ := New(mode, 0.5, 1)
		other, _ := New(mode, 0.5, 2)
		sameAsOther := true
		for cell := 0; cell < 16; cell++ {
			key := fmt.Sprintf("cell-%d", cell)
			for attempt := 1; attempt <= 4; attempt++ {
				ea, eb := a.Inject(key, attempt), b.Inject(key, attempt)
				switch {
				case (ea == nil) != (eb == nil):
					t.Fatalf("%v: schedules diverge at (%s, %d)", mode, key, attempt)
				case ea != nil && ea.Error() != eb.Error():
					t.Fatalf("%v: messages diverge: %q vs %q", mode, ea, eb)
				case ea != nil && !engine.IsTransient(ea):
					t.Fatalf("%v: injected error not transient: %v", mode, ea)
				}
				if (ea == nil) != (other.Inject(key, attempt) == nil) {
					sameAsOther = false
				}
			}
		}
		if sameAsOther {
			t.Fatalf("%v: seed does not influence the schedule", mode)
		}
	}
}

// TestFlakyNICBurstShape: a flaky cell fails a contiguous prefix of 1–3
// attempts and then recovers for good.
func TestFlakyNICBurstShape(t *testing.T) {
	in, err := New(FlakyNIC, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	flakyCells := 0
	for cell := 0; cell < 32; cell++ {
		key := fmt.Sprintf("cell-%d", cell)
		burst := 0
		for attempt := 1; attempt <= 8; attempt++ {
			if in.Inject(key, attempt) != nil {
				if attempt != burst+1 {
					t.Fatalf("%s: failure at attempt %d after recovery", key, attempt)
				}
				burst = attempt
			}
		}
		if burst > 3 {
			t.Fatalf("%s: burst of %d, want <= 3", key, burst)
		}
		if burst > 0 {
			flakyCells++
		}
	}
	if flakyCells == 0 || flakyCells == 32 {
		t.Fatalf("flaky cells = %d of 32, want a proper subset at prob 0.5", flakyCells)
	}
	if in.Injected() == 0 {
		t.Fatal("Injected counter did not advance")
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if in.Inject("k", 1) != nil || in.Injected() != 0 || in.String() != "none" {
		t.Fatal("nil injector not a no-op")
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the determinism acceptance
// check: the same seed and fault schedule produce identical results AND
// identical engine counters at 1 and at 8 workers, because injection
// decisions depend only on (key, attempt), never on scheduling.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) ([]any, engine.Stats) {
		in, err := New(Drop, 0.4, 7)
		if err != nil {
			t.Fatal(err)
		}
		rn := engine.New(
			engine.Workers(workers),
			engine.WithFaults(in),
			engine.WithRetry(engine.RetryPolicy{MaxAttempts: 8, Backoff: sim.Millisecond}),
		)
		res, err := rn.Map(context.Background(), 32, func(_ context.Context, i int) (any, error) {
			return rn.Do(fmt.Sprintf("cell-%d", i), func() (any, error) { return i * i, nil })
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, rn.Stats()
	}
	res1, st1 := run(1)
	res8, st8 := run(8)
	if !reflect.DeepEqual(res1, res8) {
		t.Fatalf("results differ between worker counts:\n1: %v\n8: %v", res1, res8)
	}
	if st1.Runs != st8.Runs || st1.Retries != st8.Retries ||
		st1.Faults != st8.Faults || st1.Backoff != st8.Backoff {
		t.Fatalf("counters differ between worker counts:\n1: %+v\n8: %+v", st1, st8)
	}
	if st1.Retries == 0 || st1.Faults == 0 {
		t.Fatalf("schedule injected nothing (stats %+v) — the test is vacuous", st1)
	}
	if !reflect.DeepEqual(st1.Attempts, st8.Attempts) {
		t.Fatalf("attempt maps differ:\n1: %v\n8: %v", st1.Attempts, st8.Attempts)
	}
}

// TestLPTSweepReportsSmallestFaultedIndex is the scheduler's fail-fast
// determinism check under injected faults: with retries disabled every
// injected fault is a real cell error, and with an adversarial cost hint
// LPT dispatches the LARGEST indices first — yet the sweep must always
// report the error of the smallest faulted index, at every worker count.
func TestLPTSweepReportsSmallestFaultedIndex(t *testing.T) {
	const n, seed, prob = 32, 11, 0.25
	key := func(i int) string { return fmt.Sprintf("cell-%02d", i) }
	probe, err := New(Drop, prob, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := -1
	for i := 0; i < n; i++ {
		if probe.Inject(key(i), 1) != nil {
			want = i
			break
		}
	}
	if want < 0 {
		t.Fatalf("seed %d faults no cell in %d — pick another seed", seed, n)
	}
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 5; trial++ {
			in, err := New(Drop, prob, seed)
			if err != nil {
				t.Fatal(err)
			}
			rn := engine.New(
				engine.Workers(workers),
				engine.WithFaults(in),
				engine.WithRetry(engine.RetryPolicy{MaxAttempts: 1}),
				engine.WithSchedule(engine.LPT),
				engine.WithCostModel(engine.NewCostModel()),
			)
			rn.SetCostHint(func(i int) float64 { return float64(i + 1) })
			_, err = rn.Map(context.Background(), n, func(_ context.Context, i int) (any, error) {
				return rn.Do(key(i), func() (any, error) { return i, nil })
			})
			if err == nil || !strings.Contains(err.Error(), "(cell "+key(want)+",") {
				t.Fatalf("workers=%d trial %d: err = %v, want the fault at %s", workers, trial, err, key(want))
			}
		}
	}
}

// TestFaultedSweepMatchesFaultFree: with retries enabled, an injected sweep
// returns the same values as a fault-free one — faults cost attempts, not
// correctness.
func TestFaultedSweepMatchesFaultFree(t *testing.T) {
	sweep := func(fi *Injector) []any {
		opts := []engine.Option{engine.Workers(4), engine.WithRetry(engine.RetryPolicy{MaxAttempts: 8, Backoff: sim.Millisecond})}
		if fi != nil {
			opts = append(opts, engine.WithFaults(fi))
		}
		rn := engine.New(opts...)
		res, err := rn.Map(context.Background(), 24, func(_ context.Context, i int) (any, error) {
			return rn.Do(fmt.Sprintf("cell-%d", i), func() (any, error) { return 3 * i, nil })
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	in, err := New(DelaySpike, 0.3, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if clean, faulted := sweep(nil), sweep(in); !reflect.DeepEqual(clean, faulted) {
		t.Fatalf("faulted sweep changed results:\nclean:   %v\nfaulted: %v", clean, faulted)
	}
	if in.Injected() == 0 {
		t.Fatal("no faults injected — the comparison is vacuous")
	}
}
