// Package faults injects seeded, probability-configured transient failures
// into experiment-engine cells, the way a real fabric misbehaves: dropped
// completions, latency spikes that blow a deadline, and NICs that flake for
// a few attempts in a row before recovering.
//
// Injection happens at the engine's attempt level (it implements
// engine.FaultInjector), so a faulted attempt is replaced by an
// engine.Transient error before the simulation runs, and the runner's
// RetryPolicy re-attempts the cell. Decisions are pure hashes of
// (seed, mode, key, attempt) — deterministic for a seed regardless of
// worker count or scheduling, so a fault-injected sweep with retries
// enabled produces tables byte-identical to a fault-free sweep while
// actually exercising the whole retry path.
package faults

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"partmb/internal/engine"
	"partmb/internal/sim"
)

// Mode selects the failure flavour.
type Mode int

const (
	// Drop fails each attempt independently with the configured
	// probability — a lost completion that a retry recovers.
	Drop Mode = iota
	// DelaySpike is Drop with latency-spike framing: the injected error
	// reports a deterministic spike duration that exceeded the cell's
	// deadline budget.
	DelaySpike
	// FlakyNIC marks a subset of cells (chosen by key hash with the
	// configured probability) as sitting on a flaky NIC: their first 1–3
	// attempts all fail, exercising multi-step backoff, then the NIC
	// recovers for good.
	FlakyNIC
)

// String renders the canonical mode name.
func (m Mode) String() string {
	switch m {
	case Drop:
		return "drop"
	case DelaySpike:
		return "delay"
	case FlakyNIC:
		return "flaky"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the forms accepted by the -faults flag.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "drop":
		return Drop, nil
	case "delay", "delay-spike", "spike":
		return DelaySpike, nil
	case "flaky", "flaky-nic", "nic":
		return FlakyNIC, nil
	}
	return 0, fmt.Errorf("faults: unknown mode %q (want drop|delay|flaky)", s)
}

// DefaultSeed matches the platform default so `-faults drop:0.2` is fully
// specified.
const DefaultSeed = 42

// Injector is a deterministic engine.FaultInjector. Safe for concurrent
// use: decisions are pure functions, the only state is a counter.
type Injector struct {
	mode Mode
	prob float64
	seed int64

	injected int64
}

// New builds an injector. prob is the per-attempt (Drop, DelaySpike) or
// per-cell (FlakyNIC) failure probability and must lie in [0, 1).
func New(mode Mode, prob float64, seed int64) (*Injector, error) {
	if prob < 0 || prob >= 1 {
		return nil, fmt.Errorf("faults: probability %v outside [0,1)", prob)
	}
	if _, err := ParseMode(mode.String()); err != nil {
		return nil, err
	}
	return &Injector{mode: mode, prob: prob, seed: seed}, nil
}

// Parse builds an injector from a -faults flag value of the form
// "mode:prob[:seed]", e.g. "drop:0.3" or "flaky:0.5:7". Empty strings,
// "none", and "off" mean no injection and return (nil, nil) — a nil
// *Injector is a valid do-nothing engine.FaultInjector.
func Parse(spec string) (*Injector, error) {
	s := strings.TrimSpace(spec)
	switch strings.ToLower(s) {
	case "", "none", "off":
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("faults: bad spec %q (want mode:prob[:seed])", spec)
	}
	mode, err := ParseMode(parts[0])
	if err != nil {
		return nil, err
	}
	prob, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("faults: bad probability in %q", spec)
	}
	seed := int64(DefaultSeed)
	if len(parts) == 3 {
		seed, err = strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad seed in %q", spec)
		}
	}
	return New(mode, prob, seed)
}

// String renders the injector in Parse's spec form.
func (in *Injector) String() string {
	if in == nil {
		return "none"
	}
	return fmt.Sprintf("%s:%g:%d", in.mode, in.prob, in.seed)
}

// Injected returns how many attempts this injector has failed so far.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return atomic.LoadInt64(&in.injected)
}

// Inject implements engine.FaultInjector: it returns a transient error for
// attempts the seeded schedule fails, nil otherwise.
func (in *Injector) Inject(key string, attempt int) error {
	if in == nil || in.prob == 0 {
		return nil
	}
	var err error
	switch in.mode {
	case Drop:
		if in.chance(key, int64(attempt)) < in.prob {
			err = engine.Transientf("injected drop (cell %.8s, attempt %d)", key, attempt)
		}
	case DelaySpike:
		if in.chance(key, int64(attempt)) < in.prob {
			// A deterministic pseudo-magnitude keeps the error message
			// reproducible across runs and worker counts.
			spike := sim.Duration(1+int64(16*in.chance(key, -int64(attempt)))) * 250 * sim.Microsecond
			err = engine.Transientf("injected delay spike of %v exceeded the cell deadline (cell %.8s, attempt %d)", spike, key, attempt)
		}
	case FlakyNIC:
		// Per-cell decision: a flaky cell fails a burst of 1–3 leading
		// attempts, then recovers permanently.
		if in.chance(key, 0) < in.prob {
			burst := 1 + int(3*in.chance(key, -1))
			if attempt <= burst {
				err = engine.Transientf("injected flaky NIC (cell %.8s, attempt %d of a %d-attempt burst)", key, attempt, burst)
			}
		}
	}
	if err != nil {
		atomic.AddInt64(&in.injected, 1)
	}
	return err
}

// chance hashes (seed, mode, key, draw) into [0, 1).
func (in *Injector) chance(key string, draw int64) float64 {
	h := sha256.New()
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(in.seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(in.mode))
	h.Write(buf[:])
	h.Write([]byte(key))
	binary.BigEndian.PutUint64(buf[:8], uint64(draw))
	h.Write(buf[:8])
	sum := h.Sum(nil)
	return float64(binary.BigEndian.Uint64(sum[:8])>>11) / (1 << 53)
}
