// Package platform consolidates the simulated experimental platform into a
// single Spec: machine topology, interconnect parameters, memory/cache mode,
// noise model, RNG seed, MPI threading level, and partitioned implementation.
//
// Before this package existed every layer carried its own subset of these
// knobs (core.Config, patterns.SweepConfig/HaloConfig, classic.Config,
// snap.Config each had Net/Machine/noise/cache fields threaded ad hoc). A
// Spec is the one place platform state lives; benchmark configs embed a
// *Spec and the harnesses read everything hardware- or environment-shaped
// through it.
//
// Specs are named (presets) or loaded from JSON files, so an experiment's
// platform is an explicit, reproducible artifact rather than a pile of CLI
// flags — the experimental-design discipline argued for by "MPI Benchmarking
// Revisited".
package platform

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"partmb/internal/cluster"
	"partmb/internal/memsim"
	"partmb/internal/mpi"
	"partmb/internal/netsim"
	"partmb/internal/noise"
)

// Spec describes the full simulated platform an experiment runs on.
//
// The zero value of every field is the paper's default (EDR fabric, Niagara
// node, hot cache, no noise, seed 42, MPI_THREAD_FUNNELED, MPIPCL), applied
// by Resolved; a zero Spec therefore reproduces the paper's testbed.
type Spec struct {
	// Name labels the spec in reports and registries; presets set it, and
	// Load fills it from the file name when the JSON omits it.
	Name string `json:"name,omitempty"`
	// Net holds the interconnect parameters (nil = netsim.EDR()).
	Net *netsim.Params `json:"net,omitempty"`
	// Machine is the per-node hardware model (nil = cluster.Niagara()).
	Machine *cluster.Machine `json:"machine,omitempty"`
	// Cache selects hot or cold CPU cache for timed iterations (§3.4).
	Cache memsim.CacheMode `json:"cache"`
	// NoiseKind and NoisePercent configure the system-noise model (§3.3).
	NoiseKind    noise.Kind `json:"noise"`
	NoisePercent float64    `json:"noise_percent"`
	// Seed makes the noise draws reproducible (0 = the default seed 42).
	Seed int64 `json:"seed,omitempty"`
	// ThreadMode is the MPI threading level for the point-to-point harness.
	// Motif and proxy runners derive their threading from their own Mode and
	// ignore this field.
	ThreadMode mpi.ThreadMode `json:"thread_mode"`
	// Impl selects the partitioned implementation under test.
	Impl mpi.PartImpl `json:"impl"`
}

// DefaultSeed is the seed applied when a Spec leaves Seed zero.
const DefaultSeed = 42

// Niagara returns the paper's platform: a Niagara-like node (2x20 Skylake
// cores, NIC on socket 0) on one EDR InfiniBand hop, hot cache, no noise.
func Niagara() *Spec {
	return &Spec{
		Name:    "niagara-edr",
		Net:     netsim.EDR(),
		Machine: cluster.Niagara(),
		Seed:    DefaultSeed,
	}
}

// EpycHDR returns the contrast platform: a wider EPYC-class node on an HDR
// (200 Gb/s generation) hop, for exploring how the paper's crossovers move
// on newer hardware.
func EpycHDR() *Spec {
	return &Spec{
		Name:    "epyc-hdr",
		Net:     netsim.HDR(),
		Machine: cluster.Epyc(),
		Seed:    DefaultSeed,
	}
}

// NiagaraHDR returns the paper's node on the newer HDR fabric (fabric-only
// upgrade study).
func NiagaraHDR() *Spec {
	s := Niagara()
	s.Name = "niagara-hdr"
	s.Net = netsim.HDR()
	return s
}

// EpycEDR returns the wider node on the paper's EDR fabric (node-only
// upgrade study).
func EpycEDR() *Spec {
	s := EpycHDR()
	s.Name = "epyc-edr"
	s.Net = netsim.EDR()
	return s
}

// presets maps preset names (and aliases) to constructors.
var presets = map[string]func() *Spec{
	"niagara-edr": Niagara,
	"niagara":     Niagara,
	"paper":       Niagara,
	"default":     Niagara,
	"epyc-hdr":    EpycHDR,
	"epyc":        EpycHDR,
	"niagara-hdr": NiagaraHDR,
	"epyc-edr":    EpycEDR,
}

// PresetNames returns the canonical preset names, sorted.
func PresetNames() []string {
	seen := map[string]bool{}
	for _, f := range presets {
		seen[f().Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns a fresh copy of the named preset.
func Preset(name string) (*Spec, error) {
	f, ok := presets[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("platform: unknown preset %q (have %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return f(), nil
}

// Resolve turns a CLI argument into a Spec: a preset name, or a path to a
// JSON spec file (anything containing a path separator or ending in .json).
func Resolve(arg string) (*Spec, error) {
	if arg == "" {
		return Niagara(), nil
	}
	if strings.ContainsAny(arg, "/\\") || strings.HasSuffix(arg, ".json") {
		return Load(arg)
	}
	return Preset(arg)
}

// Load reads a Spec from a JSON file, applies defaults, and validates it.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("platform: parsing %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	r := s.Resolved()
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("platform: %s: %w", path, err)
	}
	return r, nil
}

// Save writes the Spec to a JSON file, indented for hand editing.
func (s *Spec) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Resolved returns a copy with nil/zero fields replaced by the paper's
// defaults. A nil receiver resolves to the Niagara preset. The Net and
// Machine pointers are shared with the receiver and must be treated as
// immutable, which is how every harness uses them.
func (s *Spec) Resolved() *Spec {
	if s == nil {
		return Niagara()
	}
	out := *s
	if out.Net == nil {
		out.Net = netsim.EDR()
	}
	if out.Machine == nil {
		out.Machine = cluster.Niagara()
	}
	if out.Seed == 0 {
		out.Seed = DefaultSeed
	}
	return &out
}

// Validate checks the spec for consistency. Nil Net/Machine are allowed
// (they mean "paper default").
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.Net != nil {
		if err := s.Net.Validate(); err != nil {
			return err
		}
	}
	if s.Machine != nil {
		if err := s.Machine.Validate(); err != nil {
			return err
		}
	}
	if s.NoisePercent < 0 {
		return fmt.Errorf("platform: negative NoisePercent")
	}
	if s.NoiseKind < noise.None || s.NoiseKind > noise.Periodic {
		return fmt.Errorf("platform: unknown noise kind %v", s.NoiseKind)
	}
	return nil
}

// String renders a one-line summary of the resolved platform.
func (s *Spec) String() string {
	r := s.Resolved()
	name := r.Name
	if name == "" {
		name = "custom"
	}
	return fmt.Sprintf("%s: %dx%d cores, %.0fGb/s fabric, %s cache, noise %s/%.0f%%, %s, %s",
		name, r.Machine.Sockets, r.Machine.CoresPerSocket, r.Net.Bandwidth*8/1e9,
		r.Cache, r.NoiseKind, r.NoisePercent, r.ThreadMode, r.Impl)
}

// The With* helpers return a modified copy, leaving the receiver untouched;
// Net and Machine pointers are shared. They exist so call sites can derive
// per-cell specs from a base spec without mutation hazards under the
// engine's parallel workers.

// WithNoise returns a copy with the noise model replaced.
func (s *Spec) WithNoise(kind noise.Kind, percent float64) *Spec {
	out := *s.Resolved()
	out.NoiseKind = kind
	out.NoisePercent = percent
	return &out
}

// WithCache returns a copy with the cache mode replaced.
func (s *Spec) WithCache(mode memsim.CacheMode) *Spec {
	out := *s.Resolved()
	out.Cache = mode
	return &out
}

// WithThreadMode returns a copy with the MPI threading level replaced.
func (s *Spec) WithThreadMode(mode mpi.ThreadMode) *Spec {
	out := *s.Resolved()
	out.ThreadMode = mode
	return &out
}

// WithImpl returns a copy with the partitioned implementation replaced.
func (s *Spec) WithImpl(impl mpi.PartImpl) *Spec {
	out := *s.Resolved()
	out.Impl = impl
	return &out
}

// WithSeed returns a copy with the RNG seed replaced.
func (s *Spec) WithSeed(seed int64) *Spec {
	out := *s.Resolved()
	out.Seed = seed
	return &out
}

// WithNet returns a copy with the interconnect parameters replaced.
func (s *Spec) WithNet(net *netsim.Params) *Spec {
	out := *s.Resolved()
	out.Net = net
	return &out
}

// WithMachine returns a copy with the node model replaced.
func (s *Spec) WithMachine(m *cluster.Machine) *Spec {
	out := *s.Resolved()
	out.Machine = m
	return &out
}
