package platform

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"partmb/internal/memsim"
	"partmb/internal/mpi"
	"partmb/internal/noise"
)

// TestPresetRoundTrip saves every preset to JSON, loads it back, and checks
// the reloaded spec is identical — the acceptance criterion for the spec
// file format.
func TestPresetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			orig, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, name+".json")
			if err := orig.Save(path); err != nil {
				t.Fatal(err)
			}
			got, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, orig.Resolved()) {
				t.Fatalf("round trip changed spec:\ngot  %+v\nwant %+v", got, orig)
			}
		})
	}
}

// TestRoundTripNonDefaultFields covers the enum text forms end to end.
func TestRoundTripNonDefaultFields(t *testing.T) {
	orig := Niagara().
		WithNoise(noise.Gaussian, 7.5).
		WithCache(memsim.Cold).
		WithThreadMode(mpi.Multiple).
		WithImpl(mpi.PartNative).
		WithSeed(99)
	orig.Name = "weird"
	path := filepath.Join(t.TempDir(), "weird.json")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("round trip changed spec:\ngot  %+v\nwant %+v", got, orig)
	}
}

func TestSpecJSONIsHumanReadable(t *testing.T) {
	data, err := json.Marshal(EpycHDR().WithCache(memsim.Cold).WithNoise(noise.Uniform, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cold"`, `"uniform"`, `"funneled"`, `"mpipcl"`, `"800ns"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshalled spec missing %s: %s", want, data)
		}
	}
}

func TestResolveAndDefaults(t *testing.T) {
	var nilSpec *Spec
	r := nilSpec.Resolved()
	if r.Net == nil || r.Machine == nil || r.Seed != DefaultSeed {
		t.Fatalf("nil spec did not resolve to paper defaults: %+v", r)
	}
	if r.ThreadMode != mpi.Funneled || r.Impl != mpi.PartMPIPCL {
		t.Fatalf("nil spec thread/impl defaults wrong: %+v", r)
	}
	if r.Cache != memsim.Hot || r.NoiseKind != noise.None {
		t.Fatalf("nil spec cache/noise defaults wrong: %+v", r)
	}

	if _, err := Resolve("no-such-preset"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	if _, err := Resolve("/no/such/file.json"); err == nil {
		t.Fatal("expected error for missing file")
	}
	for _, alias := range []string{"", "niagara", "paper", "default", "NIAGARA-EDR"} {
		s, err := Resolve(alias)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", alias, err)
		}
		if s.Name != "niagara-edr" {
			t.Fatalf("Resolve(%q) = %s, want niagara-edr", alias, s.Name)
		}
	}
}

func TestValidate(t *testing.T) {
	s := Niagara()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *s
	bad.NoisePercent = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative noise percent")
	}
	bad = *s
	bad.Net.Bandwidth = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for invalid net params")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "typo.json")
	if err := os.WriteFile(path, []byte(`{"noise_pct": 4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected error for unknown JSON field")
	}
}

// TestWithHelpersDoNotMutate guards the copy semantics the engine's
// parallel workers rely on.
func TestWithHelpersDoNotMutate(t *testing.T) {
	base := Niagara()
	_ = base.WithNoise(noise.Uniform, 4)
	_ = base.WithCache(memsim.Cold)
	_ = base.WithThreadMode(mpi.Multiple)
	if base.NoiseKind != noise.None || base.Cache != memsim.Hot || base.ThreadMode != mpi.Funneled {
		t.Fatalf("With* helpers mutated the base spec: %+v", base)
	}
}
