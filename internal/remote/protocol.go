// Package remote distributes engine cells across worker processes.
//
// The package has two halves. The Coordinator embeds in a driving process
// (sweepd with -distributed, or a test harness): it implements
// engine.Executor, so a Runner built with engine.WithExecutor ships every
// serializable cell to it, and it implements http.Handler, exposing the
// worker-facing wire protocol under /v1/workers/. The Worker runtime embeds
// in cmd/sweepworker (or runs in-process in tests): it registers with a
// coordinator, heartbeats, long-polls for tasks, executes them through the
// kind registry, and posts results back.
//
// The wire protocol is deliberately minimal and content-addressed, mirroring
// the disk cache: a task is (spec hash, experiment label, cell kind, config
// JSON) and a result is (cell value JSON, worker host-ns cost). Because the
// engine's cell key already hashes the full configuration, a cell is
// location-independent — executing it on a worker can change only wall-clock
// time, never bytes — which is what makes a distributed run's journal
// byte-identical to a local run's (see DESIGN.md §11).
//
// Every message carries the wire schema version; a coordinator rejects
// mismatched workers at registration, the same forward-compatibility
// discipline the disk cache applies with its schema-versioned directory.
package remote

import "encoding/json"

// WireSchema versions the coordinator/worker wire protocol. Bump it when a
// message shape changes incompatibly: mismatched workers are turned away at
// registration with a clear error instead of failing mid-sweep on a decode.
const WireSchema = 1

// Wire paths, all rooted under the coordinator's /v1/workers/ prefix.
const (
	PathRegister  = "/v1/workers/register"  // POST RegisterRequest  → RegisterResponse
	PathHeartbeat = "/v1/workers/heartbeat" // POST HeartbeatRequest → 204
	PathPoll      = "/v1/workers/poll"      // POST PollRequest      → Task | 204 (no work)
	PathResult    = "/v1/workers/result"    // POST Result           → 204
	PathLeave     = "/v1/workers/leave"     // POST LeaveRequest     → 204
	PathStatus    = "/v1/workers"           // GET                   → Status
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Schema int `json:"schema"`
	// Name is the worker's display name (host-pid by default); it labels
	// journal/metrics/trace lanes. Names need not be unique — the
	// coordinator-issued WorkerID is the identity.
	Name string `json:"name"`
	// Parallel is the worker's concurrent task capacity, advisory input to
	// the coordinator's backlog estimate.
	Parallel int `json:"parallel,omitempty"`
}

// RegisterResponse assigns the worker its coordinator-issued identity.
type RegisterResponse struct {
	Schema   int    `json:"schema"`
	WorkerID string `json:"worker_id"`
}

// HeartbeatRequest keeps a worker's registration live. A worker that misses
// the coordinator's heartbeat timeout is declared lost: its queued tasks are
// requeued to surviving workers and its leased tasks fail transiently, which
// the engine's retry policy turns into a re-dispatch.
type HeartbeatRequest struct {
	Schema   int    `json:"schema"`
	WorkerID string `json:"worker_id"`
}

// PollRequest asks for the next task, long-polling up to WaitMS.
type PollRequest struct {
	Schema   int    `json:"schema"`
	WorkerID string `json:"worker_id"`
	WaitMS   int    `json:"wait_ms,omitempty"`
}

// Task is one cell dispatched to a worker.
type Task struct {
	Schema int `json:"schema"`
	// ID is the coordinator's dispatch identity for this resolution of the
	// cell; results echo it. (The same Key can be dispatched again later —
	// e.g. a retry after a transient failure — with a fresh ID.)
	ID int64 `json:"id"`
	// Key is the engine's content-addressed cell key (the spec hash).
	Key string `json:"key"`
	// Experiment is the engine experiment label current at dispatch.
	Experiment string `json:"exp,omitempty"`
	// Kind names the registered execute function (RegisterKind).
	Kind string `json:"kind"`
	// Config is the cell's full configuration as canonical JSON — the same
	// bytes the cell key hashes.
	Config json.RawMessage `json:"config"`
}

// Error classes a worker reports, mapping onto the engine's error taxonomy.
const (
	// ErrClassTransient marks failures worth retrying elsewhere (unknown
	// kind, resource exhaustion); the engine requeues under its RetryPolicy.
	ErrClassTransient = "transient"
	// ErrClassPermanent marks deterministic cell failures (invalid config);
	// the engine memoizes them exactly like a local error.
	ErrClassPermanent = "permanent"
)

// Result reports one executed task.
type Result struct {
	Schema   int    `json:"schema"`
	WorkerID string `json:"worker_id"`
	ID       int64  `json:"id"`
	Key      string `json:"key"`
	// Value is the cell's result JSON (present exactly when Err is empty);
	// the coordinator feeds it to the same decoder the disk cache uses.
	Value json.RawMessage `json:"value,omitempty"`
	// HostNS is the worker's measured wall-clock cost of executing the cell,
	// in nanoseconds.
	HostNS int64 `json:"host_ns,omitempty"`
	// Err and ErrClass carry a failed cell's error text and class.
	Err      string `json:"err,omitempty"`
	ErrClass string `json:"err_class,omitempty"`
}

// LeaveRequest announces a graceful departure: queued tasks are requeued
// immediately instead of waiting out the heartbeat timeout.
type LeaveRequest struct {
	Schema   int    `json:"schema"`
	WorkerID string `json:"worker_id"`
}

// Status is the coordinator's introspection snapshot (GET /v1/workers).
type Status struct {
	Schema  int            `json:"schema"`
	Workers []WorkerStatus `json:"workers"`
	// Dispatch counters since the coordinator started.
	Dispatched int64 `json:"dispatched"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Stolen     int64 `json:"stolen"`
	Requeued   int64 `json:"requeued"`
	Lost       int64 `json:"lost"`
}

// WorkerStatus describes one registered worker.
type WorkerStatus struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// Live is false once the worker left or missed its heartbeat window.
	Live bool `json:"live"`
	// Queued and Leased count tasks assigned to (but not finished by) the
	// worker; BacklogNS is the coordinator's cost-model estimate of that
	// backlog.
	Queued    int   `json:"queued"`
	Leased    int   `json:"leased"`
	BacklogNS int64 `json:"backlog_ns"`
	Completed int64 `json:"completed"`
}
