package remote

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"partmb/internal/core"
)

// ExecFunc executes one cell kind: it decodes the task's config JSON and
// returns the cell's value, which must marshal back to the same JSON a local
// run of the cell would produce (the coordinator feeds it to the engine's
// decoder and the shared disk cache). Errors are classified for the wire by
// engine.IsTransient.
type ExecFunc func(config json.RawMessage) (any, error)

var (
	kindMu sync.RWMutex
	kinds  = map[string]ExecFunc{}
)

// RegisterKind installs the execute function for a cell kind, panicking on
// duplicates or empty names — kinds are wired at init time, like the
// experiment registry, and a collision is a programming error.
func RegisterKind(name string, fn ExecFunc) {
	if name == "" || fn == nil {
		panic("remote: RegisterKind with empty name or nil func")
	}
	kindMu.Lock()
	defer kindMu.Unlock()
	if _, dup := kinds[name]; dup {
		panic(fmt.Sprintf("remote: RegisterKind called twice for %q", name))
	}
	kinds[name] = fn
}

// kindFunc returns the execute function for name, or nil if unregistered.
func kindFunc(name string) ExecFunc {
	kindMu.RLock()
	defer kindMu.RUnlock()
	return kinds[name]
}

// Kinds lists the registered cell kinds, sorted.
func Kinds() []string {
	kindMu.RLock()
	defer kindMu.RUnlock()
	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CoreRunKind is the cell kind of one fixed-repetition benchmark cell —
// the unit core.RunCached ships through the executor seam. Adaptive cells
// are not a kind of their own: the adaptive controller stays in the driving
// process and its fixed-rep sub-draws distribute individually.
const CoreRunKind = "core.Run"

func init() {
	RegisterKind(CoreRunKind, func(raw json.RawMessage) (any, error) {
		var cfg core.Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, fmt.Errorf("remote: decoding %s config: %w", CoreRunKind, err)
		}
		// The coordinator ships the already-defaulted config (its JSON is the
		// cache-key identity); Run re-applies defaults idempotently and the
		// simulator is deterministic, so this result is byte-identical to a
		// local run of the same cell.
		return core.Run(cfg)
	})
}
