package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"partmb/internal/engine"
)

// WorkerConfig tunes a Worker runtime.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:9091).
	Coordinator string
	// Name labels this worker in journals, metrics, and traces. Defaults to
	// the coordinator-issued worker id.
	Name string
	// Parallel is the number of concurrent task loops (default 1).
	Parallel int
	// Heartbeat is the liveness ping period (default 2s); keep it several
	// times shorter than the coordinator's heartbeat timeout.
	Heartbeat time.Duration
	// PollWait is the long-poll duration per task request (default 10s).
	PollWait time.Duration
	// Throttle, when positive, sleeps before executing each task — a test
	// and CI aid that keeps a sweep in flight long enough to exercise
	// mid-sweep worker loss deterministically.
	Throttle time.Duration
	// Client is the HTTP client to use; nil builds one without a global
	// timeout (long polls must outlive any client deadline).
	Client *http.Client
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Worker executes coordinator tasks through the kind registry: it
// registers, heartbeats, long-polls for tasks, runs each through its
// registered ExecFunc, and posts results back. The same runtime backs
// cmd/sweepworker and the in-process two-worker CI harness.
type Worker struct {
	cfg      WorkerConfig
	client   *http.Client
	logf     func(format string, args ...any)
	executed int64

	mu sync.Mutex
	id string
}

// NewWorker returns a worker runtime for cfg; call Run to operate it.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 10 * time.Second
	}
	w := &Worker{cfg: cfg, client: cfg.Client, logf: cfg.Logf}
	if w.client == nil {
		w.client = &http.Client{}
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	return w
}

// ID returns the coordinator-issued worker id ("" before registration).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Executed returns the number of tasks this worker has completed (posted a
// result for), successful or not.
func (w *Worker) Executed() int64 { return atomic.LoadInt64(&w.executed) }

// Run registers with the coordinator and serves tasks until ctx is
// cancelled, then leaves gracefully (best-effort) and returns nil. A
// registration that cannot be established before ctx dies returns the
// ctx error.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1 + w.cfg.Parallel)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(ctx)
	}()
	for i := 0; i < w.cfg.Parallel; i++ {
		go func() {
			defer wg.Done()
			w.taskLoop(ctx)
		}()
	}
	wg.Wait()
	w.leave()
	return nil
}

// register obtains a worker id, retrying with backoff until ctx dies — a
// worker booted before its coordinator just waits for it.
func (w *Worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		var resp RegisterResponse
		status, err := w.post(ctx, PathRegister, RegisterRequest{
			Schema:   WireSchema,
			Name:     w.cfg.Name,
			Parallel: w.cfg.Parallel,
		}, &resp)
		switch {
		case err == nil && status == http.StatusOK && resp.Schema == WireSchema && resp.WorkerID != "":
			w.mu.Lock()
			w.id = resp.WorkerID
			w.mu.Unlock()
			w.logf("sweepworker: registered with %s as %s", w.cfg.Coordinator, resp.WorkerID)
			return nil
		case err == nil && status == http.StatusBadRequest:
			// Schema mismatch: a newer/older coordinator. Retrying cannot
			// help, and the operator needs to see it.
			return fmt.Errorf("remote: coordinator rejected registration (wire schema mismatch?)")
		case ctx.Err() != nil:
			return ctx.Err()
		}
		w.logf("sweepworker: register failed (status %d, err %v); retrying in %v", status, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (w *Worker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		status, err := w.post(ctx, PathHeartbeat, HeartbeatRequest{Schema: WireSchema, WorkerID: w.ID()}, nil)
		if status == http.StatusGone {
			// The coordinator expired (or restarted past) us; rejoin.
			w.logf("sweepworker: coordinator dropped us; re-registering")
			if err := w.register(ctx); err != nil {
				return
			}
		} else if err != nil && ctx.Err() == nil {
			w.logf("sweepworker: heartbeat failed: %v", err)
		}
	}
}

// taskLoop long-polls for tasks and executes them until ctx dies. An
// in-flight task is finished and its result posted even after cancellation,
// so a graceful shutdown never strands a leased cell.
func (w *Worker) taskLoop(ctx context.Context) {
	for ctx.Err() == nil {
		task, ok := w.poll(ctx)
		if !ok {
			continue
		}
		res := w.execute(task)
		atomic.AddInt64(&w.executed, 1)
		w.postResult(res)
	}
}

// poll requests the next task; false means "none yet" (long-poll timeout,
// transport hiccup, or expiry-triggered re-registration).
func (w *Worker) poll(ctx context.Context) (Task, bool) {
	var task Task
	status, err := w.post(ctx, PathPoll, PollRequest{
		Schema:   WireSchema,
		WorkerID: w.ID(),
		WaitMS:   int(w.cfg.PollWait / time.Millisecond),
	}, &task)
	switch {
	case err == nil && status == http.StatusOK && task.Schema == WireSchema && task.ID != 0:
		return task, true
	case status == http.StatusGone:
		w.logf("sweepworker: coordinator dropped us; re-registering")
		w.register(ctx)
	case err != nil && ctx.Err() == nil:
		w.logf("sweepworker: poll failed: %v", err)
		select {
		case <-ctx.Done():
		case <-time.After(200 * time.Millisecond):
		}
	}
	return Task{}, false
}

// execute runs one task through the kind registry and builds its Result,
// classifying errors for the wire with the engine's taxonomy.
func (w *Worker) execute(t Task) Result {
	res := Result{Schema: WireSchema, WorkerID: w.ID(), ID: t.ID, Key: t.Key}
	fn := kindFunc(t.Kind)
	if fn == nil {
		// Transient: another (heterogeneous) worker may know the kind, and
		// with none that do the engine's bounded retries fall back cleanly.
		res.Err = fmt.Sprintf("remote: unknown cell kind %q (worker knows %v)", t.Kind, Kinds())
		res.ErrClass = ErrClassTransient
		return res
	}
	if w.cfg.Throttle > 0 {
		time.Sleep(w.cfg.Throttle)
	}
	t0 := time.Now()
	v, err := fn(t.Config)
	res.HostNS = time.Since(t0).Nanoseconds()
	if err != nil {
		res.Err = err.Error()
		res.ErrClass = ErrClassPermanent
		if engine.IsTransient(err) {
			res.ErrClass = ErrClassTransient
		}
		return res
	}
	raw, merr := json.Marshal(v)
	if merr != nil {
		res.Err = fmt.Sprintf("remote: marshalling %s result: %v", t.Kind, merr)
		res.ErrClass = ErrClassPermanent
		return res
	}
	res.Value = raw
	return res
}

// postResult delivers a result, retrying briefly: losing a computed result
// to a transport blip would force a whole re-execution elsewhere.
func (w *Worker) postResult(res Result) {
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 5; attempt++ {
		status, err := w.post(context.Background(), PathResult, res, nil)
		if err == nil && status < 500 {
			return
		}
		w.logf("sweepworker: posting result for task %d failed (status %d, err %v)", res.ID, status, err)
		time.Sleep(backoff)
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// leave announces a graceful departure so queued work requeues immediately.
func (w *Worker) leave() {
	id := w.ID()
	if id == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w.post(ctx, PathLeave, LeaveRequest{Schema: WireSchema, WorkerID: id}, nil)
	w.logf("sweepworker: left %s", w.cfg.Coordinator)
}

// post sends one JSON message and decodes the response into out (when
// non-nil and the status is 200).
func (w *Worker) post(ctx context.Context, path string, msg, out any) (int, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
