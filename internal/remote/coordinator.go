package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"partmb/internal/engine"

	"context"
)

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// HeartbeatTimeout is how long a silent worker stays live; past it the
	// worker is declared lost, its queued tasks are requeued to survivors,
	// and its leased tasks fail transiently (the engine's retry policy then
	// re-dispatches them). 0 means the 10s default; negative disables
	// expiry (tests drive it explicitly).
	HeartbeatTimeout time.Duration
	// Logf, when non-nil, receives one line per lifecycle event (register,
	// leave, lost worker, requeue) — wire it to log.Printf in daemons.
	Logf func(format string, args ...any)
}

// DefaultHeartbeatTimeout is the liveness window workers must heartbeat
// within; the worker runtime heartbeats several times per window.
const DefaultHeartbeatTimeout = 10 * time.Second

// Coordinator is the driver-side half of distributed execution. It is both
// an engine.Executor — Execute dispatches one cell to a registered worker
// and blocks until its result crosses back — and an http.Handler serving
// the worker wire protocol under /v1/workers/.
//
// Scheduling: Execute assigns each cell to the live worker with the least
// predicted backlog, normalized by the worker's parallelism. The engine
// already releases cells in LPT order (longest predicted first, PR 5's
// dispatch permutation), so least-backlog assignment reproduces classic LPT
// list scheduling across workers; per-key costs observed from completed
// results sharpen the predictions as the sweep runs. Idle workers steal
// from the back of the most-loaded queue — the tail task, which would
// otherwise run last — so an imbalanced tail drains across the fleet.
//
// Failure: a worker that misses its heartbeat window (or leaves) has its
// queued cells requeued to survivors and its in-flight cells failed with an
// engine-transient error; the runner's RetryPolicy re-enters Execute, which
// picks a surviving worker — or, via ErrNoWorkers, falls back to computing
// locally when the fleet is empty. Either way the sweep completes, and
// because cells are content-addressed its journal is unchanged.
type Coordinator struct {
	timeout time.Duration
	logf    func(format string, args ...any)
	now     func() time.Time // injectable for tests
	mux     *http.ServeMux
	done    chan struct{}
	closeFn sync.Once

	mu         sync.Mutex
	workers    map[string]*workerState
	order      []string // registration order, for stable iteration
	leases     map[int64]*pending
	nextTask   int64
	nextWorker int64
	costs      map[string]int64 // observed host-ns per cell key
	costSum    int64
	costN      int64
	dispatched int64
	completed  int64
	failed     int64
	stolen     int64
	requeued   int64
	lost       int64
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id        string
	name      string
	parallel  int
	lastSeen  time.Time
	live      bool
	queue     []*pending         // assigned, not yet leased
	leased    map[int64]*pending // polled, awaiting result
	backlogNS int64              // predicted cost of queue + leased
	completed int64
	wake      chan struct{} // buffered-1 signal: work may be available
}

// pending is one in-flight Execute call.
type pending struct {
	task   Task
	predNS int64
	owner  *workerState // queue or lease holder
	done   chan outcome // buffered 1; exactly one send per pending
}

type outcome struct {
	res engine.RemoteResult
	err error
}

// NewCoordinator returns a coordinator ready to mount on an HTTP server and
// install on a runner with engine.WithExecutor. Close releases its
// background liveness reaper.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	timeout := cfg.HeartbeatTimeout
	if timeout == 0 {
		timeout = DefaultHeartbeatTimeout
	}
	c := &Coordinator{
		timeout: timeout,
		logf:    cfg.Logf,
		now:     time.Now,
		done:    make(chan struct{}),
		workers: map[string]*workerState{},
		leases:  map[int64]*pending{},
		costs:   map[string]int64{},
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc(PathRegister, c.handleRegister)
	c.mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	c.mux.HandleFunc(PathPoll, c.handlePoll)
	c.mux.HandleFunc(PathResult, c.handleResult)
	c.mux.HandleFunc(PathLeave, c.handleLeave)
	c.mux.HandleFunc(PathStatus, c.handleStatus)
	if timeout > 0 {
		go c.reap(timeout)
	}
	return c
}

// Close stops the liveness reaper and unblocks idle long-polls. It does not
// fail in-flight cells; call it after the runner is drained.
func (c *Coordinator) Close() { c.closeFn.Do(func() { close(c.done) }) }

// reap periodically expires workers whose heartbeats stopped, so leased
// cells of a dead worker fail (and requeue) even while every Execute is
// parked waiting on a result.
func (c *Coordinator) reap(timeout time.Duration) {
	period := timeout / 2
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(c.now())
			c.mu.Unlock()
		case <-c.done:
			return
		}
	}
}

// ServeHTTP serves the worker wire protocol; mount the coordinator at the
// server root (paths are absolute) or pass requests for /v1/workers/*.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Execute implements engine.Executor: it dispatches one cell to the live
// worker with the least predicted backlog and blocks until the result (or
// the worker's loss, surfaced as a transient error) crosses back. With no
// live workers it returns engine.ErrNoWorkers and the runner computes the
// cell locally.
func (c *Coordinator) Execute(ctx context.Context, t engine.RemoteTask) (engine.RemoteResult, error) {
	p := &pending{done: make(chan outcome, 1)}
	c.mu.Lock()
	c.expireLocked(c.now())
	w := c.pickLocked()
	if w == nil {
		c.mu.Unlock()
		return engine.RemoteResult{}, engine.ErrNoWorkers
	}
	c.nextTask++
	p.task = Task{
		Schema:     WireSchema,
		ID:         c.nextTask,
		Key:        t.Key,
		Experiment: t.Experiment,
		Kind:       t.Kind,
		Config:     t.Config,
	}
	p.predNS = c.predictLocked(t.Key)
	c.dispatched++
	c.enqueueLocked(w, p)
	c.mu.Unlock()

	select {
	case out := <-p.done:
		return out.res, out.err
	case <-ctx.Done():
		c.abandon(p)
		return engine.RemoteResult{}, ctx.Err()
	}
}

// abandon withdraws a still-queued pending after its Execute context died.
// A leased pending is left to finish: its result lands in the buffered done
// channel and is garbage-collected with the pending.
func (c *Coordinator) abandon(p *pending) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := p.owner
	if w == nil {
		return
	}
	for i, q := range w.queue {
		if q == p {
			w.queue = append(w.queue[:i], w.queue[i+1:]...)
			w.backlogNS -= p.predNS
			if w.backlogNS < 0 {
				w.backlogNS = 0
			}
			p.owner = nil
			return
		}
	}
}

// pickLocked returns the live worker with the least predicted backlog per
// parallel slot (nil when none are live), tie-broken by registration order
// for determinism.
func (c *Coordinator) pickLocked() *workerState {
	var best *workerState
	var bestLoad float64
	for _, id := range c.order {
		w := c.workers[id]
		if !w.live {
			continue
		}
		load := float64(w.backlogNS) / float64(w.parallel)
		if best == nil || load < bestLoad {
			best, bestLoad = w, load
		}
	}
	return best
}

// predictLocked estimates a cell's cost: the last observed host-ns for the
// exact key, else the mean over all completed cells, else 1 (any constant —
// with no observations every cell looks equal and assignment degenerates to
// round-robin-by-backlog, which is the right cold-start behaviour).
func (c *Coordinator) predictLocked(key string) int64 {
	if ns, ok := c.costs[key]; ok && ns > 0 {
		return ns
	}
	if c.costN > 0 {
		return c.costSum / c.costN
	}
	return 1
}

// enqueueLocked appends p to w's queue and wakes every live worker: the
// owner to serve it, the rest so an idle worker can steal it promptly.
func (c *Coordinator) enqueueLocked(w *workerState, p *pending) {
	p.owner = w
	w.queue = append(w.queue, p)
	w.backlogNS += p.predNS
	for _, id := range c.order {
		if ws := c.workers[id]; ws.live {
			select {
			case ws.wake <- struct{}{}:
			default:
			}
		}
	}
}

// takeLocked pops the next task for w: the front of its own queue, else —
// work stealing — the tail of the longest live queue. The stolen tail is
// the task that would otherwise run last, so stealing it shortens the
// imbalanced queue's makespan without reordering its head. The task is
// leased to w until its result (or w's loss) settles it.
func (c *Coordinator) takeLocked(w *workerState) *pending {
	var p *pending
	if len(w.queue) > 0 {
		p = w.queue[0]
		w.queue = w.queue[1:]
	} else {
		var victim *workerState
		for _, id := range c.order {
			v := c.workers[id]
			if v == w || !v.live || len(v.queue) == 0 {
				continue
			}
			if victim == nil || len(v.queue) > len(victim.queue) {
				victim = v
			}
		}
		if victim == nil {
			return nil
		}
		p = victim.queue[len(victim.queue)-1]
		victim.queue = victim.queue[:len(victim.queue)-1]
		victim.backlogNS -= p.predNS
		if victim.backlogNS < 0 {
			victim.backlogNS = 0
		}
		w.backlogNS += p.predNS
		c.stolen++
		c.logf("remote: worker %s (%s) stole task %d (cell %.12s) from %s",
			w.name, w.id, p.task.ID, p.task.Key, victim.name)
	}
	p.owner = w
	w.leased[p.task.ID] = p
	c.leases[p.task.ID] = p
	return p
}

// expireLocked declares every worker silent past the heartbeat window lost.
func (c *Coordinator) expireLocked(now time.Time) {
	if c.timeout <= 0 {
		return
	}
	for _, id := range c.order {
		w := c.workers[id]
		if w.live && now.Sub(w.lastSeen) > c.timeout {
			c.lost++
			c.logf("remote: worker %s (%s) lost (no heartbeat for %v)", w.name, w.id, now.Sub(w.lastSeen).Round(time.Millisecond))
			c.dropLocked(w)
		}
	}
}

// dropLocked removes w from service: queued cells are requeued to surviving
// workers (or failed transiently when none remain — the engine retries, and
// the retry's Execute falls back to local via ErrNoWorkers), and leased
// cells fail transiently so the retry re-dispatches them.
func (c *Coordinator) dropLocked(w *workerState) {
	w.live = false
	queued := w.queue
	w.queue = nil
	w.backlogNS = 0
	for id, p := range w.leased {
		delete(w.leased, id)
		delete(c.leases, id)
		p.owner = nil
		c.failed++
		p.done <- outcome{err: engine.Transientf("remote: worker %s (%s) lost mid-cell", w.name, w.id)}
	}
	for _, p := range queued {
		p.owner = nil
		if nw := c.pickLocked(); nw != nil {
			c.requeued++
			c.logf("remote: requeued task %d (cell %.12s) from %s to %s", p.task.ID, p.task.Key, w.name, nw.name)
			c.enqueueLocked(nw, p)
		} else {
			c.failed++
			p.done <- outcome{err: engine.Transientf("remote: worker %s (%s) lost with no surviving workers", w.name, w.id)}
		}
	}
}

// Status returns a point-in-time snapshot of workers and dispatch counters.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Schema:     WireSchema,
		Dispatched: c.dispatched,
		Completed:  c.completed,
		Failed:     c.failed,
		Stolen:     c.stolen,
		Requeued:   c.requeued,
		Lost:       c.lost,
	}
	for _, id := range c.order {
		w := c.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID:        w.id,
			Name:      w.name,
			Live:      w.live,
			Queued:    len(w.queue),
			Leased:    len(w.leased),
			BacklogNS: w.backlogNS,
			Completed: w.completed,
		})
	}
	return st
}

// --- HTTP handlers -------------------------------------------------------

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !c.decode(w, r, &req, &req.Schema) {
		return
	}
	c.mu.Lock()
	c.nextWorker++
	id := fmt.Sprintf("w%d", c.nextWorker)
	name := req.Name
	if name == "" {
		name = id
	}
	par := req.Parallel
	if par < 1 {
		par = 1
	}
	ws := &workerState{
		id:       id,
		name:     name,
		parallel: par,
		lastSeen: c.now(),
		live:     true,
		leased:   map[int64]*pending{},
		wake:     make(chan struct{}, 1),
	}
	c.workers[id] = ws
	c.order = append(c.order, id)
	c.mu.Unlock()
	c.logf("remote: worker %s registered as %s (parallel %d)", name, id, par)
	writeJSON(w, http.StatusOK, RegisterResponse{Schema: WireSchema, WorkerID: id})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !c.decode(w, r, &req, &req.Schema) {
		return
	}
	c.mu.Lock()
	ws := c.workers[req.WorkerID]
	live := ws != nil && ws.live
	if live {
		ws.lastSeen = c.now()
	}
	c.mu.Unlock()
	if !live {
		http.Error(w, "remote: unknown or expired worker; re-register", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !c.decode(w, r, &req, &req.Schema) {
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	deadline := c.now().Add(wait)
	for {
		now := c.now()
		c.mu.Lock()
		ws := c.workers[req.WorkerID]
		if ws == nil || !ws.live {
			c.mu.Unlock()
			http.Error(w, "remote: unknown or expired worker; re-register", http.StatusGone)
			return
		}
		ws.lastSeen = now
		c.expireLocked(now)
		if p := c.takeLocked(ws); p != nil {
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, p.task)
			return
		}
		wake := ws.wake
		c.mu.Unlock()

		remaining := deadline.Sub(c.now())
		if remaining <= 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		// Cap each nap so a long poll still notices stealable work enqueued
		// on another worker's queue and keeps its lastSeen fresh.
		nap := remaining
		if nap > 250*time.Millisecond {
			nap = 250 * time.Millisecond
		}
		timer := time.NewTimer(nap)
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		case <-c.done:
			timer.Stop()
			w.WriteHeader(http.StatusNoContent)
			return
		}
		timer.Stop()
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var res Result
	if !c.decode(w, r, &res, &res.Schema) {
		return
	}
	c.mu.Lock()
	if ws := c.workers[res.WorkerID]; ws != nil && ws.live {
		ws.lastSeen = c.now()
	}
	p := c.leases[res.ID]
	if p == nil || p.owner == nil || p.owner.id != res.WorkerID {
		// Stale: the task was re-dispatched after this worker was presumed
		// lost. The newer resolution is authoritative; drop this one.
		c.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	owner := p.owner
	delete(c.leases, res.ID)
	delete(owner.leased, res.ID)
	owner.backlogNS -= p.predNS
	if owner.backlogNS < 0 {
		owner.backlogNS = 0
	}
	if res.Err != "" {
		c.failed++
		err := errors.New(res.Err)
		if res.ErrClass != ErrClassPermanent {
			err = engine.Transient(err)
		}
		p.done <- outcome{err: err}
	} else {
		c.completed++
		owner.completed++
		if res.HostNS > 0 {
			c.costs[res.Key] = res.HostNS
			c.costSum += res.HostNS
			c.costN++
		}
		p.done <- outcome{res: engine.RemoteResult{Value: res.Value, HostNS: res.HostNS, Worker: owner.name}}
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if !c.decode(w, r, &req, &req.Schema) {
		return
	}
	c.mu.Lock()
	if ws := c.workers[req.WorkerID]; ws != nil && ws.live {
		c.logf("remote: worker %s (%s) left", ws.name, ws.id)
		c.dropLocked(ws)
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "remote: GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

// decode reads a POSTed JSON message and checks its wire schema, writing
// the HTTP error itself when the message is unusable.
func (c *Coordinator) decode(w http.ResponseWriter, r *http.Request, v any, schema *int) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "remote: POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("remote: bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	if *schema != WireSchema {
		http.Error(w, fmt.Sprintf("remote: wire schema %d, want %d", *schema, WireSchema), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
