package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"partmb/internal/core"
	"partmb/internal/engine"
	"partmb/internal/obs"
)

// testHarness boots a coordinator on an httptest server. The heartbeat
// timeout is generous by default so loaded CI machines never expire a
// healthy in-process worker; loss tests pass their own.
func testHarness(t *testing.T, timeout time.Duration) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: timeout, Logf: t.Logf})
	hs := httptest.NewServer(c)
	t.Cleanup(func() {
		hs.Close()
		c.Close()
	})
	return c, hs
}

// startWorker runs a Worker runtime in-process until test cleanup.
func startWorker(t *testing.T, url, name string, throttle time.Duration) *Worker {
	t.Helper()
	w := NewWorker(WorkerConfig{
		Coordinator: url,
		Name:        name,
		Heartbeat:   50 * time.Millisecond,
		PollWait:    500 * time.Millisecond,
		Throttle:    throttle,
		Logf:        t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	waitUntil(t, 5*time.Second, "worker "+name+" registered", func() bool { return w.ID() != "" })
	return w
}

func waitUntil(t *testing.T, d time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// postJSON posts msg to url, decoding a 200 response into out (when
// non-nil), and returns the HTTP status.
func postJSON(t *testing.T, url string, msg, out any) int {
	t.Helper()
	body, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// registerRaw registers a coordinator-only worker the test drives by hand
// over raw HTTP (no Worker runtime, no heartbeats).
func registerRaw(t *testing.T, url, name string) string {
	t.Helper()
	var resp RegisterResponse
	if code := postJSON(t, url+PathRegister, RegisterRequest{Schema: WireSchema, Name: name}, &resp); code != http.StatusOK {
		t.Fatalf("register %s: status %d", name, code)
	}
	return resp.WorkerID
}

// pollRaw leases one task as the given worker, failing the test on timeout.
func pollRaw(t *testing.T, url, workerID string, waitMS int) Task {
	t.Helper()
	var task Task
	code := postJSON(t, url+PathPoll, PollRequest{Schema: WireSchema, WorkerID: workerID, WaitMS: waitMS}, &task)
	if code != http.StatusOK || task.ID == 0 {
		t.Fatalf("poll as %s: status %d, task %+v", workerID, code, task)
	}
	return task
}

// The headline correctness property (ISSUE 9): a distributed sweep's
// deterministic journal is byte-identical to a local run's, because cells
// are content-addressed and every volatile field (who ran a cell, where,
// when) is zeroed by obs.WriteJournal.
func TestDistributedJournalMatchesLocal(t *testing.T) {
	base := core.Config{Partitions: 4, Iterations: 3, Warmup: -1}
	sizes := []int64{4096, 8192, 16384, 32768}

	run := func(opts ...engine.Option) ([]byte, engine.Stats) {
		t.Helper()
		col := obs.NewCollector()
		rn := engine.New(append([]engine.Option{engine.Workers(2), engine.WithObserver(col)}, opts...)...)
		rn.SetExperiment("dist")
		if _, err := core.SweepMessageSizes(rn, base, sizes); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteJournal(&buf, "remote-test", col, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rn.Stats()
	}

	local, lst := run()
	if lst.RemoteRuns != 0 {
		t.Fatalf("local run reported %d remote runs", lst.RemoteRuns)
	}

	c, hs := testHarness(t, 30*time.Second)
	startWorker(t, hs.URL, "worker-1", 0)
	startWorker(t, hs.URL, "worker-2", 0)
	dist, dst := run(engine.WithExecutor(c))

	if dst.RemoteRuns != dst.Runs || dst.RemoteRuns != int64(len(sizes)) {
		t.Errorf("distributed run: %d/%d cells ran remotely, want all %d", dst.RemoteRuns, dst.Runs, len(sizes))
	}
	if !bytes.Equal(local, dist) {
		t.Errorf("distributed journal differs from local:\n--- local ---\n%s\n--- distributed ---\n%s", local, dist)
	}
	j, err := obs.ReadJournal(bytes.NewReader(dist))
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Cells) != len(sizes) {
		t.Errorf("journal has %d cells, want %d", len(j.Cells), len(sizes))
	}
	for _, cl := range j.Cells {
		if cl.Remote != "" || cl.RemoteHostNS != 0 || cl.StartNS != 0 {
			t.Errorf("deterministic journal leaked volatile remote fields: %+v", cl)
		}
	}
}

// A worker that leases a cell and goes silent is declared lost: the lease
// fails transiently, the engine's retry re-dispatches, and a survivor that
// registered in the meantime completes the sweep.
func TestWorkerLossRequeuesToSurvivor(t *testing.T) {
	c, hs := testHarness(t, 400*time.Millisecond)
	lame := registerRaw(t, hs.URL, "lame")

	rn := engine.New(engine.WithExecutor(c))
	type outcome struct {
		res *core.Result
		err error
	}
	ch := make(chan outcome, 1)
	cfg := core.Config{MessageBytes: 4096, Partitions: 4, Iterations: 2, Warmup: -1}
	go func() {
		res, err := core.RunCached(rn, cfg)
		ch <- outcome{res, err}
	}()

	// The lame worker leases the cell... and is never heard from again.
	task := pollRaw(t, hs.URL, lame, 5000)
	if task.Kind != CoreRunKind {
		t.Fatalf("leased task kind %q, want %q", task.Kind, CoreRunKind)
	}
	survivor := startWorker(t, hs.URL, "survivor", 0)

	select {
	case out := <-ch:
		if out.err != nil {
			t.Fatalf("sweep failed after worker loss: %v", out.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not complete after worker loss")
	}
	st := rn.Stats()
	if st.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 (lost lease must retry)", st.Retries)
	}
	if st.RemoteErrors < 1 {
		t.Errorf("remote errors = %d, want >= 1", st.RemoteErrors)
	}
	if survivor.Executed() < 1 {
		t.Errorf("survivor executed %d cells, want >= 1", survivor.Executed())
	}
	cs := c.Status()
	if cs.Lost != 1 {
		t.Errorf("coordinator lost = %d, want 1", cs.Lost)
	}
}

// An idle worker steals the tail of the most-loaded queue.
func TestIdleWorkerStealsQueuedTail(t *testing.T) {
	c, hs := testHarness(t, 30*time.Second)
	a := registerRaw(t, hs.URL, "a")

	const n = 3
	type outcome struct {
		res engine.RemoteResult
		err error
	}
	ch := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			res, err := c.Execute(context.Background(), engine.RemoteTask{
				Key:    fmt.Sprintf("k%d", i),
				Kind:   "test.raw",
				Config: json.RawMessage(`{}`),
			})
			ch <- outcome{res, err}
		}(i)
	}
	waitUntil(t, 5*time.Second, "3 tasks queued on a", func() bool {
		st := c.Status()
		return len(st.Workers) > 0 && st.Workers[0].Queued == n
	})

	b := registerRaw(t, hs.URL, "b")
	stolen := pollRaw(t, hs.URL, b, 2000)
	if st := c.Status(); st.Stolen != 1 {
		t.Fatalf("stolen = %d, want 1", st.Stolen)
	}

	// Drain: a takes its remaining two, everyone posts results whose value
	// echoes the cell key so each Execute call can be matched to the worker
	// that served it.
	finish := func(workerID string, task Task) {
		code := postJSON(t, hs.URL+PathResult, Result{
			Schema:   WireSchema,
			WorkerID: workerID,
			ID:       task.ID,
			Key:      task.Key,
			Value:    json.RawMessage(fmt.Sprintf("{%q:true}", task.Key)),
			HostNS:   1000,
		}, nil)
		if code != http.StatusNoContent {
			t.Fatalf("result post: status %d", code)
		}
	}
	finish(b, stolen)
	finish(a, pollRaw(t, hs.URL, a, 2000))
	finish(a, pollRaw(t, hs.URL, a, 2000))

	workers := map[string]string{}
	for i := 0; i < n; i++ {
		out := <-ch
		if out.err != nil {
			t.Fatalf("Execute: %v", out.err)
		}
		var payload map[string]bool
		if err := json.Unmarshal(out.res.Value, &payload); err != nil {
			t.Fatal(err)
		}
		for key := range payload {
			workers[key] = out.res.Worker
		}
	}
	if got := workers[stolen.Key]; got != "b" {
		t.Errorf("stolen cell %s served by %q, want b (got map %v)", stolen.Key, got, workers)
	}
	if st := c.Status(); st.Completed != n {
		t.Errorf("completed = %d, want %d", st.Completed, n)
	}
}

// A graceful leave requeues still-queued cells to survivors immediately.
func TestLeaveRequeuesQueuedCells(t *testing.T) {
	c, hs := testHarness(t, 30*time.Second)
	a := registerRaw(t, hs.URL, "a")

	done := make(chan error, 1)
	go func() {
		_, err := c.Execute(context.Background(), engine.RemoteTask{
			Key: "k", Kind: "test.raw", Config: json.RawMessage(`{}`),
		})
		done <- err
	}()
	waitUntil(t, 5*time.Second, "task queued on a", func() bool {
		st := c.Status()
		return len(st.Workers) > 0 && st.Workers[0].Queued == 1
	})

	b := registerRaw(t, hs.URL, "b")
	if code := postJSON(t, hs.URL+PathLeave, LeaveRequest{Schema: WireSchema, WorkerID: a}, nil); code != http.StatusNoContent {
		t.Fatalf("leave: status %d", code)
	}
	task := pollRaw(t, hs.URL, b, 2000)
	postJSON(t, hs.URL+PathResult, Result{
		Schema: WireSchema, WorkerID: b, ID: task.ID, Key: task.Key,
		Value: json.RawMessage(`{"ok":true}`), HostNS: 1,
	}, nil)
	if err := <-done; err != nil {
		t.Fatalf("Execute after leave: %v", err)
	}
	if st := c.Status(); st.Requeued != 1 {
		t.Errorf("requeued = %d, want 1", st.Requeued)
	}
}

// With no registered workers, Execute reports ErrNoWorkers and an
// executor-equipped runner computes cells locally.
func TestNoWorkersFallsBackLocal(t *testing.T) {
	c, _ := testHarness(t, 30*time.Second)
	_, err := c.Execute(context.Background(), engine.RemoteTask{Key: "k", Kind: "test.raw", Config: json.RawMessage(`{}`)})
	if !errors.Is(err, engine.ErrNoWorkers) {
		t.Fatalf("Execute with no workers: err = %v, want ErrNoWorkers", err)
	}

	rn := engine.New(engine.WithExecutor(c))
	cfg := core.Config{MessageBytes: 4096, Partitions: 4, Iterations: 2, Warmup: -1}
	if _, err := core.RunCached(rn, cfg); err != nil {
		t.Fatalf("RunCached with empty fleet: %v", err)
	}
	st := rn.Stats()
	if st.RemoteRuns != 0 || st.Runs != 1 {
		t.Errorf("stats = %d remote runs, %d runs; want 0 and 1 (local fallback)", st.RemoteRuns, st.Runs)
	}
}

// Distributed results flow into the shared disk cache exactly like local
// ones: a later local runner on the same directory serves them as disk hits,
// byte-identical.
func TestDistributedResultsPopulateDiskCache(t *testing.T) {
	dir := t.TempDir()
	d1, err := engine.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, hs := testHarness(t, 30*time.Second)
	startWorker(t, hs.URL, "worker-1", 0)
	startWorker(t, hs.URL, "worker-2", 0)

	base := core.Config{Partitions: 4, Iterations: 2, Warmup: -1}
	sizes := []int64{4096, 8192, 16384}
	rn := engine.New(engine.Workers(2), engine.WithExecutor(c), engine.WithDiskCache(d1))
	distRes, err := core.SweepMessageSizes(rn, base, sizes)
	if err != nil {
		t.Fatal(err)
	}
	st := rn.Stats()
	if st.RemoteRuns != int64(len(sizes)) || st.DiskWrites != int64(len(sizes)) {
		t.Fatalf("distributed run: %d remote runs, %d disk writes; want %d of each", st.RemoteRuns, st.DiskWrites, len(sizes))
	}

	d2, err := engine.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rn2 := engine.New(engine.WithDiskCache(d2))
	localRes, err := core.SweepMessageSizes(rn2, base, sizes)
	if err != nil {
		t.Fatal(err)
	}
	st2 := rn2.Stats()
	if st2.DiskHits != int64(len(sizes)) || st2.Runs != 0 {
		t.Fatalf("local rerun: %d disk hits, %d runs; want %d hits and 0 runs", st2.DiskHits, st2.Runs, len(sizes))
	}
	if !reflect.DeepEqual(distRes, localRes) {
		t.Error("disk-cached distributed results differ from their reload")
	}
}

// A worker that does not know a task's kind fails it transiently, so the
// engine's bounded retries (and eventual local fallback) apply.
func TestUnknownKindIsTransient(t *testing.T) {
	c, hs := testHarness(t, 30*time.Second)
	startWorker(t, hs.URL, "worker-1", 0)
	_, err := c.Execute(context.Background(), engine.RemoteTask{
		Key: "k", Kind: "no.such.kind", Config: json.RawMessage(`{}`),
	})
	if !engine.IsTransient(err) {
		t.Fatalf("unknown kind: err = %v, want transient", err)
	}
}

// Wire-schema mismatches are rejected at the door.
func TestSchemaMismatchRejected(t *testing.T) {
	_, hs := testHarness(t, 30*time.Second)
	if code := postJSON(t, hs.URL+PathRegister, RegisterRequest{Schema: WireSchema + 1, Name: "future"}, nil); code != http.StatusBadRequest {
		t.Errorf("future-schema register: status %d, want 400", code)
	}
	if code := postJSON(t, hs.URL+PathHeartbeat, HeartbeatRequest{Schema: WireSchema, WorkerID: "w999"}, nil); code != http.StatusGone {
		t.Errorf("unknown-worker heartbeat: status %d, want 410", code)
	}
}
