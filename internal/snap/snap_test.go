package snap

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGrid(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 8: {2, 4}, 16: {4, 4},
		64: {8, 8}, 128: {8, 16}, 256: {16, 16}, 7: {1, 7},
	}
	for n, want := range cases {
		px, py := Grid(n)
		if px != want[0] || py != want[1] {
			t.Errorf("Grid(%d) = %dx%d, want %dx%d", n, px, py, want[0], want[1])
		}
		if px*py != n {
			t.Errorf("Grid(%d) does not cover all ranks", n)
		}
	}
}

func TestProjectSpeedup(t *testing.T) {
	// Paper numbers: f=0.545 at 256 nodes with gain 15.1.
	got := ProjectSpeedup(0.545, SweepGain)
	want := 1 / ((1 - 0.545) + 0.545/15.1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ProjectSpeedup = %v, want %v", got, want)
	}
	if got < 2 || got > 2.1 {
		t.Fatalf("256-node projection = %.3f, expected just above 2x", got)
	}
	if s := ProjectSpeedup(0, SweepGain); s != 1 {
		t.Fatalf("zero fraction projection = %v, want 1", s)
	}
	if s := ProjectSpeedup(1, SweepGain); math.Abs(s-SweepGain) > 1e-12 {
		t.Fatalf("full fraction projection = %v, want gain", s)
	}
}

func TestProjectSpeedupPanics(t *testing.T) {
	for _, f := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fraction %v did not panic", f)
				}
			}()
			ProjectSpeedup(f, SweepGain)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero gain did not panic")
			}
		}()
		ProjectSpeedup(0.5, 0)
	}()
}

// Property: speedup is monotone in the fraction and bounded by [1, gain].
func TestQuickProjectionBounds(t *testing.T) {
	f := func(a, b uint16) bool {
		fa := float64(a) / 65535
		fb := float64(b) / 65535
		if fa > fb {
			fa, fb = fb, fa
		}
		sa, sb := ProjectSpeedup(fa, SweepGain), ProjectSpeedup(fb, SweepGain)
		return sa <= sb && sa >= 1 && sb <= SweepGain+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileSmall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Repeats = 1
	cfg.Octants = 4
	pt, err := Profile(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.MPIFraction <= 0 || pt.MPIFraction >= 1 {
		t.Fatalf("MPI fraction = %v, want in (0,1)", pt.MPIFraction)
	}
	if pt.Projected < 1 {
		t.Fatalf("projected speedup = %v, want >= 1", pt.Projected)
	}
}

func TestMPIFractionGrowsWithNodes(t *testing.T) {
	// The mpiP profile shape: strong scaling shrinks per-rank compute, so
	// the MPI fraction rises with node count.
	cfg := DefaultConfig()
	cfg.Octants = 4
	pts, err := ProfileScaling(nil, cfg, []int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[0].MPIFraction < pts[1].MPIFraction && pts[1].MPIFraction < pts[2].MPIFraction) {
		t.Fatalf("MPI fraction not increasing: %v %v %v",
			pts[0].MPIFraction, pts[1].MPIFraction, pts[2].MPIFraction)
	}
	if !(pts[0].Projected < pts[2].Projected) {
		t.Fatalf("projection not increasing with scale")
	}
}

func TestProfileBadNodes(t *testing.T) {
	if _, err := Profile(DefaultConfig(), 0); err == nil {
		t.Fatal("0 nodes accepted")
	}
}

func TestProxyDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Octants = 2
	a, err := Profile(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.AppTime != b.AppTime || a.MPITime != b.MPITime {
		t.Fatalf("proxy nondeterministic: %+v vs %+v", a, b)
	}
}

func TestProxyReportNamesCalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Octants = 2
	rep, err := runProxy(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, cs := range rep.Calls {
		seen[cs.Name] = true
		if cs.Count <= 0 {
			t.Fatalf("call %s has count %d", cs.Name, cs.Count)
		}
	}
	for _, want := range []string{"MPI_Recv", "MPI_Isend", "MPI_Waitall"} {
		if !seen[want] {
			t.Fatalf("profile missing %s: %+v", want, rep.Calls)
		}
	}
}
