package snap

import (
	"fmt"

	"partmb/internal/memsim"
	"partmb/internal/mpi"
	"partmb/internal/sim"
)

// The paper projects SNAP's partitioned speedup from a profile (§4.8,
// Figure 13) and lists actually porting the application as future work.
// ComparePort performs that port on the proxy: the baseline sweeps with
// whole-boundary point-to-point messages; the ported version divides each
// z-block's work into chunks, readies each chunk's boundary partition as it
// completes, and lets the downstream rank start computing a chunk as soon
// as its partition lands — the early-bird pipelining partitioned
// communication exists for. Compute per rank is identical in both versions,
// so the measured speedup isolates the communication improvement and can be
// compared against the Amdahl projection.

// PortResult reports one baseline-vs-port comparison.
type PortResult struct {
	Nodes int
	// Chunks is the partition count per boundary message in the port.
	Chunks int
	// BaselineElapsed / PortedElapsed are end-to-end sweep times.
	BaselineElapsed sim.Duration
	PortedElapsed   sim.Duration
	// MPIFraction is the baseline's profiled MPI time share.
	MPIFraction float64
	// Projected is the paper-style Amdahl projection from MPIFraction with
	// the Sweep3D gain.
	Projected float64
}

// Measured returns the measured port speedup.
func (r *PortResult) Measured() float64 {
	return float64(r.BaselineElapsed) / float64(r.PortedElapsed)
}

// String renders a one-line summary.
func (r *PortResult) String() string {
	return fmt.Sprintf("port@%dnodes: baseline=%v ported=%v measured=%.3fx projected=%.3fx (mpi %.1f%%)",
		r.Nodes, r.BaselineElapsed, r.PortedElapsed, r.Measured(), r.Projected, 100*r.MPIFraction)
}

// ComparePort runs the proxy at the given node count in both forms.
// chunks is the per-boundary partition count of the ported version.
func ComparePort(cfg Config, nodes, chunks int) (*PortResult, error) {
	cfg = cfg.withDefaults()
	if nodes <= 0 {
		return nil, fmt.Errorf("snap: nodes = %d, must be positive", nodes)
	}
	if chunks <= 0 {
		return nil, fmt.Errorf("snap: chunks = %d, must be positive", chunks)
	}
	if cfg.BoundaryBytes%int64(chunks) != 0 {
		return nil, fmt.Errorf("snap: %d chunks must divide the %dB boundary", chunks, cfg.BoundaryBytes)
	}

	rep, err := runProxy(cfg, nodes)
	if err != nil {
		return nil, err
	}
	// The aggregate AppTime sums ranks; the sweep's elapsed time is the
	// per-rank mean (all ranks span the same measured region).
	baseline := rep.AppTime / sim.Duration(nodes)

	ported, err := runPortedProxy(cfg, nodes, chunks)
	if err != nil {
		return nil, err
	}
	return &PortResult{
		Nodes:           nodes,
		Chunks:          chunks,
		BaselineElapsed: baseline,
		PortedElapsed:   ported,
		MPIFraction:     rep.MPIFraction(),
		Projected:       ProjectSpeedup(rep.MPIFraction(), SweepGain),
	}, nil
}

// runPortedProxy executes the partitioned port and returns the mean
// per-rank elapsed time of the measured region.
func runPortedProxy(cfg Config, nodes, chunks int) (sim.Duration, error) {
	s := sim.New()
	mcfg := mpi.DefaultConfig(nodes)
	spec := cfg.Platform.Resolved()
	mcfg.Net = spec.Net
	mcfg.Machine = spec.Machine
	mcfg.Mem = memsim.Default(spec.Cache)
	mcfg.PartImpl = mpi.PartNative
	w := mpi.NewWorld(s, mcfg)
	px, py := Grid(nodes)
	perStep := sim.Duration(int64(cfg.TotalCompute) / int64(nodes))
	perChunk := perStep / sim.Duration(chunks)
	chunkBytes := cfg.BoundaryBytes / int64(chunks)

	var totalElapsed sim.Duration
	for id := 0; id < nodes; id++ {
		id := id
		comm := w.Comm(id)
		x, y := id%px, id/px
		s.Spawn(fmt.Sprintf("snapport/rank%d", id), func(p *sim.Proc) {
			// Persistent partitioned pairs per octant and axis, as in the
			// Sweep3D motif.
			var precv, psend [8][2]*mpi.PRequest
			for o := 0; o < cfg.Octants; o++ {
				upX, upY, downX, downY := sweepNeighbours(o, x, y, px, py)
				tagX, tagY := o*2+1, o*2+2
				if upX >= 0 {
					precv[o][0] = comm.PrecvInit(p, upX, tagX, chunks, chunkBytes)
				}
				if upY >= 0 {
					precv[o][1] = comm.PrecvInit(p, upY, tagY, chunks, chunkBytes)
				}
				if downX >= 0 {
					psend[o][0] = comm.PsendInit(p, downX, tagX, chunks, chunkBytes)
				}
				if downY >= 0 {
					psend[o][1] = comm.PsendInit(p, downY, tagY, chunks, chunkBytes)
				}
			}
			comm.Barrier(p)
			start := p.Now()
			for rep := 0; rep < cfg.Repeats; rep++ {
				for o := 0; o < cfg.Octants; o++ {
					for zb := 0; zb < cfg.ZBlocks; zb++ {
						for axis := 0; axis < 2; axis++ {
							if pr := precv[o][axis]; pr != nil {
								pr.Start(p)
							}
							if pr := psend[o][axis]; pr != nil {
								pr.Start(p)
							}
						}
						// Chunked wavefront: wait for a chunk's upstream
						// partitions, compute it, forward its boundary.
						for ch := 0; ch < chunks; ch++ {
							for axis := 0; axis < 2; axis++ {
								if pr := precv[o][axis]; pr != nil {
									pr.WaitPartition(p, ch)
								}
							}
							p.Sleep(perChunk)
							for axis := 0; axis < 2; axis++ {
								if pr := psend[o][axis]; pr != nil {
									pr.Pready(p, ch)
								}
							}
						}
						for axis := 0; axis < 2; axis++ {
							if pr := precv[o][axis]; pr != nil {
								pr.Wait(p)
							}
							if pr := psend[o][axis]; pr != nil {
								pr.Wait(p)
							}
						}
					}
				}
			}
			totalElapsed += p.Now().Sub(start)
			comm.Barrier(p)
		})
	}
	if err := s.Run(); err != nil {
		return 0, fmt.Errorf("snap: ported proxy simulation failed: %w", err)
	}
	return totalElapsed / sim.Duration(nodes), nil
}

// sweepNeighbours returns the up/downstream ranks for octant o at grid
// position (x, y); -1 at the boundary.
func sweepNeighbours(o, x, y, px, py int) (upX, upY, downX, downY int) {
	dx, dy := 1, 1
	if o&1 != 0 {
		dx = -1
	}
	if o&2 != 0 {
		dy = -1
	}
	upX, upY, downX, downY = -1, -1, -1, -1
	if nx := x - dx; nx >= 0 && nx < px {
		upX = y*px + nx
	}
	if nx := x + dx; nx >= 0 && nx < px {
		downX = y*px + nx
	}
	if ny := y - dy; ny >= 0 && ny < py {
		upY = ny*px + x
	}
	if ny := y + dy; ny >= 0 && ny < py {
		downY = ny*px + x
	}
	return upX, upY, downX, downY
}
