// Package snap models the paper's proxy-application projection (§4.8): SNAP
// is a discrete-ordinates neutral-particle transport proxy (after PARTISN)
// whose communication is a 3-D wavefront sweep. The paper profiles SNAP-C
// with mpiP at increasing node counts — MPI send/recv grows from 1–6% of
// runtime at small scale to 20.4% at 128 nodes and 54.5% at 256 nodes — and
// projects the speedup of porting it to MPI Partitioned by applying the
// 15.1x Sweep3D communication gain to the MPI fraction.
//
// This package reproduces both ingredients: a SNAP-like sweep proxy executed
// on the simulated cluster under the mpiP-style profiler (strong scaling: a
// fixed global problem divided over more ranks), and the Amdahl projection.
package snap

import (
	"context"
	"fmt"
	"math"

	"partmb/internal/engine"
	"partmb/internal/memsim"
	"partmb/internal/mpi"
	"partmb/internal/platform"
	"partmb/internal/prof"
	"partmb/internal/sim"
	"partmb/internal/stats"
)

// SweepGain is the communication-throughput improvement factor measured for
// MPI Partitioned on the Sweep3D pattern; the paper projects with 15.1x.
const SweepGain = 15.1

// Config describes the SNAP proxy workload.
type Config struct {
	// TotalCompute is the global compute per sweep step, strong-scaled:
	// each of P ranks computes TotalCompute/P per step.
	TotalCompute sim.Duration
	// BoundaryBytes is the per-neighbour boundary message size.
	BoundaryBytes int64
	// ZBlocks is the KBA pipeline depth per octant.
	ZBlocks int
	// Octants is the number of sweep corners (1..8).
	Octants int
	// Repeats is the number of full sweeps.
	Repeats int
	// Platform bundles the hardware models (nil = the paper's Niagara/EDR
	// defaults). The proxy keeps the library's funneled threading — the
	// spec's ThreadMode and Impl do not apply to the profiled baseline.
	Platform *platform.Spec
	// Adaptive, when non-nil, estimates each scaling point from repeated
	// draws under derived seeds until the projected speedup's confidence
	// interval is tight (see ProfileScaling). The proxy is deterministic,
	// so draws converge at MinSamples; the field exists so the whole suite
	// shares one sampling contract. Nil keeps fixed cache keys identical.
	Adaptive *stats.RunConfig `json:",omitempty"`
}

// DefaultConfig returns a workload calibrated so the MPI fraction grows from
// a few percent at small node counts to dominance at 256 nodes, the shape of
// the paper's mpiP profile.
func DefaultConfig() Config {
	return Config{
		TotalCompute:  400 * sim.Millisecond,
		BoundaryBytes: 512 << 10,
		// A deep KBA pipeline keeps the wavefront-fill wait small relative
		// to the per-octant work at low node counts (the paper's 1-6%
		// regime); at 128-256 nodes the grid diagonal grows past the
		// pipeline depth and blocking MPI time dominates.
		ZBlocks: 32,
		Octants: 8,
		Repeats: 1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.TotalCompute == 0 {
		c.TotalCompute = d.TotalCompute
	}
	if c.BoundaryBytes == 0 {
		c.BoundaryBytes = d.BoundaryBytes
	}
	if c.ZBlocks == 0 {
		c.ZBlocks = d.ZBlocks
	}
	if c.Octants == 0 {
		c.Octants = d.Octants
	}
	if c.Repeats == 0 {
		c.Repeats = d.Repeats
	}
	c.Platform = c.Platform.Resolved()
	return c
}

// Grid factors n into the most-square Px x Py process grid (Px <= Py).
func Grid(n int) (px, py int) {
	px = int(math.Sqrt(float64(n)))
	for ; px >= 1; px-- {
		if n%px == 0 {
			return px, n / px
		}
	}
	return 1, n
}

// ProfilePoint is one row of the scaling profile.
type ProfilePoint struct {
	Nodes       int
	AppTime     sim.Duration
	MPITime     sim.Duration
	MPIFraction float64
	// Projected is the speedup from porting to MPI Partitioned, per the
	// paper's projection with SweepGain.
	Projected float64
	// CI is the confidence estimate of Projected on adaptive runs (nil on
	// the fixed path, keeping fixed-path JSON byte-identical).
	CI *stats.Estimate `json:",omitempty"`
}

// SimElapsed returns the profiled virtual application time — the
// cell-level "virtual sim time" the observability journal records (see
// internal/obs.SimTimed).
func (p ProfilePoint) SimElapsed() sim.Duration { return p.AppTime }

// SampleStats implements the observability layer's Sampled interface (see
// internal/obs). Fixed-path points report n == 0.
func (p ProfilePoint) SampleStats() (n int, relCI float64, reason string) {
	if p.CI == nil {
		return 0, 0, ""
	}
	return p.CI.N, p.CI.RelHalfWidth, p.CI.Reason
}

// Profile runs the proxy at the given node count and returns its mpiP-style
// profile point.
func Profile(cfg Config, nodes int) (ProfilePoint, error) {
	cfg = cfg.withDefaults()
	if nodes <= 0 {
		return ProfilePoint{}, fmt.Errorf("snap: nodes = %d, must be positive", nodes)
	}
	rep, err := runProxy(cfg, nodes)
	if err != nil {
		return ProfilePoint{}, err
	}
	f := rep.MPIFraction()
	return ProfilePoint{
		Nodes:       nodes,
		AppTime:     rep.AppTime,
		MPITime:     rep.MPITime,
		MPIFraction: f,
		Projected:   ProjectSpeedup(f, SweepGain),
	}, nil
}

// ProfileScaling profiles every node count in parallel on the runner's
// worker pool, memoizing each (config, nodes) point. A nil runner uses the
// shared default runner.
func ProfileScaling(rn *engine.Runner, cfg Config, nodeCounts []int) ([]ProfilePoint, error) {
	cfg = cfg.withDefaults()
	r := engine.OrDefault(rn)
	// Cold-cost heuristic for LPT dispatch: profile cost grows with the
	// node count (more ranks to simulate).
	r.SetCostHint(func(i int) float64 { return float64(nodeCounts[i]) })
	vals, err := r.Map(context.Background(), len(nodeCounts), func(ctx context.Context, i int) (any, error) {
		n := nodeCounts[i]
		key, kerr := engine.Key("snap.Profile", cfg, n)
		if kerr != nil {
			key = ""
		}
		if cfg.Adaptive != nil && cfg.Adaptive.Budget > 0 {
			key = "" // budget stops depend on host speed; never memoize
		}
		v, err := engine.DoAs(r, key, func() (ProfilePoint, error) {
			if cfg.Adaptive != nil {
				return adaptiveProfile(cfg, n)
			}
			return Profile(cfg, n)
		})
		if err != nil {
			return nil, fmt.Errorf("snap: %d nodes: %w", n, err)
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]ProfilePoint, len(nodeCounts))
	for i, v := range vals {
		out[i] = v.(ProfilePoint)
	}
	return out, nil
}

// adaptiveProfile estimates one scaling point with confidence-targeted
// draws: the proxy runs under seeds derived from the platform seed
// (stats.DeriveSeed) and the projected speedup feeds a sampler until its
// interval is tight or the budget runs out. The returned point is the first
// draw's profile with Projected replaced by the sample mean and the full
// estimate attached.
func adaptiveProfile(cfg Config, nodes int) (ProfilePoint, error) {
	rc := *cfg.Adaptive
	s := stats.NewSampler(rc)
	var first ProfilePoint
	for draw := 0; !s.Done(); draw++ {
		sub := cfg
		sub.Adaptive = nil
		sub.Platform = cfg.Platform.Resolved().WithSeed(stats.DeriveSeed(cfg.Platform.Resolved().Seed, draw))
		pt, err := Profile(sub, nodes)
		if err != nil {
			return ProfilePoint{}, fmt.Errorf("adaptive draw %d: %w", draw, err)
		}
		if draw == 0 {
			first = pt
		}
		s.Add(pt.Projected)
	}
	est := s.Estimate()
	first.Projected = est.Mean
	first.CI = &est
	return first, nil
}

// ProjectSpeedup applies the paper's projection: the MPI fraction f of the
// runtime is accelerated by gain, the rest is unchanged (Amdahl).
func ProjectSpeedup(fraction, gain float64) float64 {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("snap: MPI fraction %v outside [0,1]", fraction))
	}
	if gain <= 0 {
		panic("snap: non-positive gain")
	}
	return 1 / ((1 - fraction) + fraction/gain)
}

// runProxy executes the SNAP-like sweep on `nodes` ranks under the profiler.
func runProxy(cfg Config, nodes int) (prof.Report, error) {
	s := sim.New()
	mcfg := mpi.DefaultConfig(nodes)
	spec := cfg.Platform.Resolved()
	mcfg.Net = spec.Net
	mcfg.Machine = spec.Machine
	mcfg.Mem = memsim.Default(spec.Cache)
	w := mpi.NewWorld(s, mcfg)
	pf := prof.New()
	px, py := Grid(nodes)
	perStep := sim.Duration(int64(cfg.TotalCompute) / int64(nodes))

	for id := 0; id < nodes; id++ {
		id := id
		comm := w.Comm(id)
		rp := pf.Rank(id)
		x, y := id%px, id/px
		s.Spawn(fmt.Sprintf("snap/rank%d", id), func(p *sim.Proc) {
			comm.Barrier(p)
			rp.Begin(p)
			step := 0
			for rep := 0; rep < cfg.Repeats; rep++ {
				for o := 0; o < cfg.Octants; o++ {
					upX, upY, downX, downY := sweepNeighbours(o, x, y, px, py)
					var pending []*mpi.Request
					for zb := 0; zb < cfg.ZBlocks; zb++ {
						tag := step * 4
						if upX >= 0 {
							rp.Call(p, "MPI_Recv", func() { comm.Recv(p, upX, tag) })
						}
						if upY >= 0 {
							rp.Call(p, "MPI_Recv", func() { comm.Recv(p, upY, tag+1) })
						}
						p.Sleep(perStep)
						if downX >= 0 {
							rp.Call(p, "MPI_Isend", func() {
								pending = append(pending, comm.IsendBytes(p, downX, tag, cfg.BoundaryBytes))
							})
						}
						if downY >= 0 {
							rp.Call(p, "MPI_Isend", func() {
								pending = append(pending, comm.IsendBytes(p, downY, tag+1, cfg.BoundaryBytes))
							})
						}
						step++
					}
					rp.Call(p, "MPI_Waitall", func() { mpi.WaitAll(p, pending...) })
				}
			}
			rp.End(p)
			comm.Barrier(p)
		})
	}
	if err := s.Run(); err != nil {
		return prof.Report{}, fmt.Errorf("snap: proxy simulation failed: %w", err)
	}
	return pf.Report(), nil
}
