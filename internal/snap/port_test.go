package snap

import (
	"strings"
	"testing"
)

func portCfg() Config {
	cfg := DefaultConfig()
	cfg.Octants = 4
	cfg.ZBlocks = 8
	return cfg
}

func TestComparePortSpeedsUpSweep(t *testing.T) {
	res, err := ComparePort(portCfg(), 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured() <= 1.0 {
		t.Fatalf("partitioned port not faster: %v", res)
	}
	if res.MPIFraction <= 0 || res.MPIFraction >= 1 {
		t.Fatalf("MPI fraction = %v", res.MPIFraction)
	}
	if !strings.Contains(res.String(), "measured") {
		t.Fatalf("bad String: %q", res.String())
	}
}

func TestComparePortSpeedupGrowsWithScale(t *testing.T) {
	// More nodes => higher MPI fraction => more for the port to win.
	small, err := ComparePort(portCfg(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ComparePort(portCfg(), 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big.Measured() <= small.Measured() {
		t.Fatalf("port speedup did not grow with scale: %d nodes %.3f vs %d nodes %.3f",
			small.Nodes, small.Measured(), big.Nodes, big.Measured())
	}
	if big.MPIFraction <= small.MPIFraction {
		t.Fatalf("MPI fraction did not grow with scale")
	}
}

func TestComparePortTracksProjectionDirection(t *testing.T) {
	// The measured and projected speedups need not match in magnitude (the
	// projection applies the Sweep3D throughput gain; the port pipelines
	// wavefront fill), but both must exceed 1 and move the same way.
	res, err := ComparePort(portCfg(), 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Projected <= 1 || res.Measured() <= 1 {
		t.Fatalf("speedups not both above 1: %v", res)
	}
}

func TestComparePortValidation(t *testing.T) {
	if _, err := ComparePort(portCfg(), 0, 8); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := ComparePort(portCfg(), 4, 0); err == nil {
		t.Fatal("0 chunks accepted")
	}
	cfg := portCfg()
	cfg.BoundaryBytes = 100
	if _, err := ComparePort(cfg, 4, 3); err == nil {
		t.Fatal("indivisible chunking accepted")
	}
}

func TestSweepNeighboursCorners(t *testing.T) {
	// Octant 0 sweeps (+x, +y): rank (0,0) has no upstream, rank (px-1,
	// py-1) has no downstream.
	upX, upY, downX, downY := sweepNeighbours(0, 0, 0, 4, 4)
	if upX != -1 || upY != -1 {
		t.Fatalf("corner rank has upstream: %d %d", upX, upY)
	}
	if downX != 1 || downY != 4 {
		t.Fatalf("corner downstream = %d %d, want 1 4", downX, downY)
	}
	upX, upY, downX, downY = sweepNeighbours(0, 3, 3, 4, 4)
	if downX != -1 || downY != -1 {
		t.Fatalf("far corner has downstream: %d %d", downX, downY)
	}
	if upX != 14 || upY != 11 {
		t.Fatalf("far corner upstream = %d %d, want 14 11", upX, upY)
	}
	// Octant 3 sweeps (-x, -y): roles reverse.
	upX, upY, downX, downY = sweepNeighbours(3, 3, 3, 4, 4)
	if upX != -1 || upY != -1 {
		t.Fatalf("octant-3 start corner has upstream: %d %d", upX, upY)
	}
	_, _, _, _ = upX, upY, downX, downY
}
