package memsim

import (
	"testing"
	"testing/quick"

	"partmb/internal/sim"
)

func TestHotCacheIsFree(t *testing.T) {
	m := Default(Hot)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.AccessStall(1 << 20); got != 0 {
		t.Fatalf("hot-cache stall = %v, want 0", got)
	}
	if got := m.InvalidateCost(); got != 0 {
		t.Fatalf("hot-cache invalidation = %v, want 0", got)
	}
}

func TestColdCacheStallScalesWithBytes(t *testing.T) {
	m := Default(Cold)
	small := m.AccessStall(4 << 10)
	big := m.AccessStall(4 << 20)
	if small <= 0 || big <= 0 {
		t.Fatalf("cold stalls must be positive: small=%v big=%v", small, big)
	}
	if big <= small {
		t.Fatalf("stall not monotonic: %v for 4KiB vs %v for 4MiB", small, big)
	}
	// 4 MiB at 12 GB/s is ~350us; sanity-check the magnitude (within 2x).
	bytes := float64(4 << 20)
	want := sim.Duration(bytes / 12e9 * 1e9)
	if big < want || big > 2*want+m.TouchLatency {
		t.Fatalf("4MiB stall = %v, want about %v", big, want)
	}
}

func TestZeroBytesNoStall(t *testing.T) {
	m := Default(Cold)
	if got := m.AccessStall(0); got != 0 {
		t.Fatalf("stall for 0 bytes = %v, want 0", got)
	}
	if got := m.AccessStall(-5); got != 0 {
		t.Fatalf("stall for negative bytes = %v, want 0", got)
	}
}

func TestInvalidateCostMatchesBufferSize(t *testing.T) {
	m := Default(Cold)
	got := m.InvalidateCost()
	bytes := 2 * float64(8<<20)
	want := sim.Duration(bytes / 12e9 * 1e9)
	if got != want {
		t.Fatalf("InvalidateCost = %v, want %v", got, want)
	}
}

func TestCacheModeString(t *testing.T) {
	if Hot.String() != "hot" || Cold.String() != "cold" {
		t.Fatalf("mode strings wrong: %v %v", Hot, Cold)
	}
	if CacheMode(9).String() == "" {
		t.Fatal("unknown mode should still print")
	}
}

func TestParseCacheMode(t *testing.T) {
	if m, err := ParseCacheMode("hot"); err != nil || m != Hot {
		t.Fatalf("ParseCacheMode(hot) = %v, %v", m, err)
	}
	if m, err := ParseCacheMode("cold"); err != nil || m != Cold {
		t.Fatalf("ParseCacheMode(cold) = %v, %v", m, err)
	}
	if _, err := ParseCacheMode("lukewarm"); err == nil {
		t.Fatal("ParseCacheMode accepted garbage")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []*Model{
		{Mode: Hot, DRAMBandwidth: 0},
		{Mode: Hot, DRAMBandwidth: -1},
		{Mode: Hot, DRAMBandwidth: 1e9, InvalidationBufferBytes: -1},
		{Mode: Hot, DRAMBandwidth: 1e9, TouchLatency: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d passed Validate", i)
		}
	}
}

// Property: cold stall is monotone nondecreasing in the byte count.
func TestQuickStallMonotone(t *testing.T) {
	m := Default(Cold)
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.AccessStall(x) <= m.AccessStall(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
