// Package memsim models the CPU memory hierarchy effects the benchmark suite
// exposes through its hot-cache / cold-cache modes (paper §3.4).
//
// With a hot cache, repeatedly-touched buffers live in L1/L2 and reads are
// free at the timescales the benchmark measures. With a cold cache the suite
// invalidates L1/L2 by streaming through an 8 MiB buffer before each
// iteration (the SMB technique), so the timed communication path must fetch
// its payload from DRAM. The model captures this as an additive per-byte
// stall on buffer accesses plus an explicit invalidation cost.
package memsim

import (
	"fmt"

	"partmb/internal/sim"
)

// CacheMode selects whether buffers start in cache for each timed iteration.
type CacheMode int

const (
	// Hot leaves buffers cached between iterations (the usual
	// micro-benchmark default).
	Hot CacheMode = iota
	// Cold invalidates the cache before every iteration, so buffer reads
	// stall on DRAM.
	Cold
)

// String returns "hot" or "cold".
func (m CacheMode) String() string {
	switch m {
	case Hot:
		return "hot"
	case Cold:
		return "cold"
	default:
		return fmt.Sprintf("CacheMode(%d)", int(m))
	}
}

// ParseCacheMode parses "hot" or "cold".
func ParseCacheMode(s string) (CacheMode, error) {
	switch s {
	case "hot":
		return Hot, nil
	case "cold":
		return Cold, nil
	}
	return Hot, fmt.Errorf("memsim: unknown cache mode %q (want hot or cold)", s)
}

// MarshalText renders the mode as "hot" or "cold" (used by JSON platform
// specs).
func (m CacheMode) MarshalText() ([]byte, error) {
	if m != Hot && m != Cold {
		return nil, fmt.Errorf("memsim: cannot marshal %v", m)
	}
	return []byte(m.String()), nil
}

// UnmarshalText parses the forms accepted by ParseCacheMode.
func (m *CacheMode) UnmarshalText(b []byte) error {
	v, err := ParseCacheMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// Model holds the memory-system parameters of a node.
type Model struct {
	// Mode is the cache state for timed iterations.
	Mode CacheMode
	// DRAMBandwidth is the sustainable single-stream read bandwidth from
	// main memory, in bytes per second.
	DRAMBandwidth float64
	// InvalidationBufferBytes is the size of the buffer streamed through to
	// evict L1/L2 (the paper uses 8 MiB, after the SMBs).
	InvalidationBufferBytes int64
	// TouchLatency is the fixed cost of the first cache-missing access to a
	// buffer (TLB + line fill startup).
	TouchLatency sim.Duration
}

// Default returns a Skylake-like memory model in the given cache mode:
// ~12 GB/s effective single-stream DRAM bandwidth and an 8 MiB invalidation
// buffer.
func Default(mode CacheMode) *Model {
	return &Model{
		Mode:                    mode,
		DRAMBandwidth:           12e9,
		InvalidationBufferBytes: 8 << 20,
		TouchLatency:            200 * sim.Nanosecond,
	}
}

// Validate checks the model parameters.
func (m *Model) Validate() error {
	if m.DRAMBandwidth <= 0 {
		return fmt.Errorf("memsim: DRAMBandwidth must be positive")
	}
	if m.InvalidationBufferBytes < 0 {
		return fmt.Errorf("memsim: negative InvalidationBufferBytes")
	}
	if m.TouchLatency < 0 {
		return fmt.Errorf("memsim: negative TouchLatency")
	}
	return nil
}

// AccessStall returns the extra time spent bringing n bytes of a buffer from
// DRAM when the cache is cold; zero when hot.
func (m *Model) AccessStall(n int64) sim.Duration {
	if m.Mode == Hot || n <= 0 {
		return 0
	}
	return m.TouchLatency + sim.Duration(float64(n)/m.DRAMBandwidth*1e9)
}

// InvalidateCost returns the time taken by the cache-invalidation routine
// itself (a read+write pass over the invalidation buffer). The benchmark
// performs invalidation outside the timed region, but the cost is still
// accounted against total wall time.
func (m *Model) InvalidateCost() sim.Duration {
	if m.Mode == Hot {
		return 0
	}
	// Read + write traffic over the buffer.
	bytes := 2 * float64(m.InvalidationBufferBytes)
	return sim.Duration(bytes / m.DRAMBandwidth * 1e9)
}
