// Package noise implements the system-noise models of the paper (§3.3) used
// to skew per-thread compute times: a single-thread delay (mimicking a
// context switch on one core, the Finepoints methodology), uniform noise, and
// Gaussian noise (after Mondragon et al.).
//
// All models are deterministic given a seed, so simulated experiments are
// exactly reproducible.
package noise

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"partmb/internal/sim"
)

// Kind identifies a noise model.
type Kind int

const (
	// None applies no noise: every thread computes exactly the base amount.
	None Kind = iota
	// SingleThread delays exactly one thread (thread 0) by the full noise
	// amount; all others compute the base amount. Mimics a context switch on
	// one CPU core.
	SingleThread
	// Uniform samples each thread's compute from U[base, base*(1+p)].
	Uniform
	// Gaussian samples each thread's compute from N(base, (base*p)^2),
	// truncated at zero.
	Gaussian
	// Periodic models an OS noise daemon (after Ferreira et al.'s
	// kernel-level noise injection): every core loses the CPU for a fixed
	// slice once per period, with a random phase per thread and region.
	// The noise percentage is the daemon's duty cycle.
	Periodic
)

// String returns the canonical lower-case name of the noise kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case SingleThread:
		return "single"
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Periodic:
		return "periodic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a noise-kind name as accepted by the CLI tools.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "none", "0":
		return None, nil
	case "single", "single-thread", "singlethread":
		return SingleThread, nil
	case "uniform":
		return Uniform, nil
	case "gaussian", "normal", "gauss":
		return Gaussian, nil
	case "periodic", "daemon":
		return Periodic, nil
	}
	return None, fmt.Errorf("noise: unknown model %q (want none|single|uniform|gaussian|periodic)", s)
}

// MarshalText renders the canonical kind name (used by JSON platform specs).
func (k Kind) MarshalText() ([]byte, error) {
	if k < None || k > Periodic {
		return nil, fmt.Errorf("noise: cannot marshal %v", k)
	}
	return []byte(k.String()), nil
}

// UnmarshalText parses the forms accepted by ParseKind.
func (k *Kind) UnmarshalText(b []byte) error {
	v, err := ParseKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Model generates per-thread compute durations for one parallel region.
//
// Concurrency: the embedded generator is guarded by a mutex, so a Model may
// be shared across engine worker goroutines without data races. Determinism
// still requires the *call order* to be deterministic — concurrent callers
// interleave draws nondeterministically — so the harnesses keep one model
// per cell (seed derived per cell/rank, see stats.DeriveSeed) and the lock
// is the backstop that turns an accidental share into a correctness issue
// only, never a race. Audit note: core and consume build a model per run,
// patterns builds one per rank, and halo3d/sweep3d precompute Region
// sequentially before launching goroutines; no engine sweep currently
// shares a model across workers.
type Model struct {
	kind    Kind
	percent float64 // noise amount as a fraction, e.g. 0.04 for 4%
	period  sim.Duration

	mu  sync.Mutex // guards rng
	rng *rand.Rand
}

// DefaultPeriod is the daemon firing period of the Periodic model when
// created through New (Ferreira et al. inject at millisecond scale).
const DefaultPeriod = sim.Millisecond

// New returns a noise model of the given kind with the noise amount expressed
// as a percentage (the paper's "4% noise" is percent=4). The model is
// deterministic for a given seed.
func New(kind Kind, percent float64, seed int64) *Model {
	if percent < 0 {
		panic("noise: negative noise percentage")
	}
	if kind == Periodic && percent >= 100 {
		panic("noise: periodic duty cycle must be below 100%")
	}
	return &Model{
		kind:    kind,
		percent: percent / 100,
		period:  DefaultPeriod,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// NewPeriodic returns the daemon-noise model with an explicit firing
// period; the duty cycle is percent/100, so each firing steals
// period*percent/100 of CPU time.
func NewPeriodic(percent float64, period sim.Duration, seed int64) *Model {
	if period <= 0 {
		panic("noise: periodic model needs a positive period")
	}
	m := New(Periodic, percent, seed)
	m.period = period
	return m
}

// Kind returns the model kind.
func (m *Model) Kind() Kind { return m.kind }

// Percent returns the configured noise amount in percent.
func (m *Model) Percent() float64 { return m.percent * 100 }

// Region returns the per-thread compute durations for one parallel region of
// n threads with the given base compute amount. Thread i computes for
// result[i].
func (m *Model) Region(n int, base sim.Duration) []sim.Duration {
	if n <= 0 {
		panic("noise: region needs at least one thread")
	}
	out := make([]sim.Duration, n)
	for i := range out {
		out[i] = base
	}
	if m.percent == 0 || m.kind == None {
		return out
	}
	amount := float64(base) * m.percent
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.kind {
	case SingleThread:
		// Delay one thread by the full noise amount. The delayed thread is
		// chosen at random so averages do not privilege a particular core,
		// matching the effect of an OS-scheduled context switch.
		victim := m.rng.Intn(n)
		out[victim] = base + sim.Duration(amount)
	case Uniform:
		for i := range out {
			out[i] = base + sim.Duration(m.rng.Float64()*amount)
		}
	case Gaussian:
		// Mean = base, stddev = noise amount. The paper ignores tail
		// samples; we truncate below at a small positive floor, and the
		// benchmark layer additionally prunes extreme samples (§4.1).
		for i := range out {
			v := float64(base) + m.rng.NormFloat64()*amount
			if v < float64(base)/100 {
				v = float64(base) / 100
			}
			out[i] = sim.Duration(v)
		}
	case Periodic:
		for i := range out {
			phase := sim.Duration(m.rng.Int63n(int64(m.period)))
			out[i] = m.stretchPeriodic(base, phase)
		}
	}
	return out
}

// stretchPeriodic returns the wall time needed to accumulate base CPU time
// when a daemon steals the core for period*duty once every period, first
// firing at the given phase.
func (m *Model) stretchPeriodic(base sim.Duration, phase sim.Duration) sim.Duration {
	steal := sim.Duration(float64(m.period) * m.percent)
	if steal <= 0 {
		return base
	}
	var t sim.Duration
	remaining := base
	nextFire := phase
	for remaining > 0 {
		if t+remaining <= nextFire {
			t += remaining
			break
		}
		remaining -= nextFire - t
		t = nextFire + steal
		nextFire += m.period
	}
	return t
}

// MaxExpected returns an upper bound on the compute duration the model will
// commonly produce, used for sizing single-send comparisons: base*(1+p) for
// single/uniform, base*(1+3p) for Gaussian (3 sigma).
func (m *Model) MaxExpected(base sim.Duration) sim.Duration {
	switch m.kind {
	case None:
		return base
	case Gaussian:
		return base + sim.Duration(3*float64(base)*m.percent)
	case Periodic:
		// Duty-cycle stretch plus at most one extra firing.
		stretched := float64(base)/(1-m.percent) + float64(m.period)*m.percent
		return sim.Duration(stretched)
	default:
		return base + sim.Duration(float64(base)*m.percent)
	}
}
