package noise_test

import (
	"context"
	"sync"
	"testing"

	"partmb/internal/engine"
	"partmb/internal/noise"
	"partmb/internal/sim"
)

// TestSharedModelUnderRace shares ONE noise model across 8 raw goroutines.
// Before the Model grew its mutex this was a data race on the embedded
// *rand.Rand (run under -race to see it); now sharing is merely
// nondeterministic, never racy.
func TestSharedModelUnderRace(t *testing.T) {
	shared := noise.New(noise.Gaussian, 10, 42)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				out := shared.Region(4, sim.Microsecond)
				if len(out) != 4 {
					panic("bad region length")
				}
			}
		}()
	}
	wg.Wait()
}

// TestSharedModelUnderEngineWorkers drives the shared model through the
// engine's worker pool at -workers 8 — the sweep shape the audit is about:
// a model captured by a cell closure and executed from many worker
// goroutines at once.
func TestSharedModelUnderEngineWorkers(t *testing.T) {
	for _, kind := range []noise.Kind{noise.SingleThread, noise.Uniform, noise.Gaussian, noise.Periodic} {
		shared := noise.New(kind, 5, 7)
		rn := engine.New(engine.Workers(8), engine.WithoutCache())
		_, err := rn.Map(context.Background(), 64, func(ctx context.Context, i int) (any, error) {
			var total sim.Duration
			for _, d := range shared.Region(8, sim.Microsecond) {
				total += d
			}
			return int64(total), nil
		})
		if err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
	}
}
