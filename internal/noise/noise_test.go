package noise

import (
	"math"
	"testing"
	"testing/quick"

	"partmb/internal/sim"
)

const base = 10 * sim.Millisecond

func TestNoneIsExact(t *testing.T) {
	m := New(None, 0, 1)
	for _, d := range m.Region(16, base) {
		if d != base {
			t.Fatalf("no-noise compute = %v, want %v", d, base)
		}
	}
}

func TestZeroPercentIsExactForAllKinds(t *testing.T) {
	for _, k := range []Kind{SingleThread, Uniform, Gaussian} {
		m := New(k, 0, 1)
		for _, d := range m.Region(8, base) {
			if d != base {
				t.Fatalf("%v at 0%%: compute = %v, want %v", k, d, base)
			}
		}
	}
}

func TestSingleThreadDelaysExactlyOne(t *testing.T) {
	m := New(SingleThread, 4, 42)
	region := m.Region(16, base)
	delayed := 0
	for _, d := range region {
		switch {
		case d == base:
		case d == base+sim.Duration(0.04*float64(base)):
			delayed++
		default:
			t.Fatalf("unexpected compute %v", d)
		}
	}
	if delayed != 1 {
		t.Fatalf("threads delayed = %d, want exactly 1", delayed)
	}
}

func TestSingleThreadVictimVaries(t *testing.T) {
	m := New(SingleThread, 4, 7)
	victims := make(map[int]bool)
	for trial := 0; trial < 50; trial++ {
		for i, d := range m.Region(8, base) {
			if d > base {
				victims[i] = true
			}
		}
	}
	if len(victims) < 2 {
		t.Fatalf("victim never varies across trials: %v", victims)
	}
}

func TestUniformBounds(t *testing.T) {
	m := New(Uniform, 10, 99)
	hi := base + sim.Duration(0.10*float64(base))
	for trial := 0; trial < 100; trial++ {
		for _, d := range m.Region(8, base) {
			if d < base || d > hi {
				t.Fatalf("uniform sample %v outside [%v,%v]", d, base, hi)
			}
		}
	}
}

func TestGaussianMeanAndSpread(t *testing.T) {
	m := New(Gaussian, 4, 5)
	var sum float64
	n := 0
	for trial := 0; trial < 500; trial++ {
		for _, d := range m.Region(4, base) {
			sum += float64(d)
			n++
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-float64(base)) > 0.02*float64(base) {
		t.Fatalf("gaussian mean = %v, want about %v", sim.Duration(mean), base)
	}
}

func TestGaussianNeverNonPositive(t *testing.T) {
	// Absurd noise: 1000% stddev would often sample negative durations;
	// the model must floor them.
	m := New(Gaussian, 1000, 3)
	for trial := 0; trial < 200; trial++ {
		for _, d := range m.Region(4, base) {
			if d <= 0 {
				t.Fatalf("gaussian produced non-positive compute %v", d)
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(Uniform, 4, 12345)
	b := New(Uniform, 4, 12345)
	for trial := 0; trial < 10; trial++ {
		ra, rb := a.Region(8, base), b.Region(8, base)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("same seed diverged at trial %d thread %d", trial, i)
			}
		}
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"none": None, "single": SingleThread, "single-thread": SingleThread,
		"uniform": Uniform, "gaussian": Gaussian, "normal": Gaussian,
		"GAUSSIAN": Gaussian, "periodic": Periodic, "daemon": Periodic,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("pink"); err == nil {
		t.Error("ParseKind accepted unknown model")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{None: "none", SingleThread: "single", Uniform: "uniform", Gaussian: "gaussian", Periodic: "periodic"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestMaxExpected(t *testing.T) {
	if got := New(None, 4, 1).MaxExpected(base); got != base {
		t.Errorf("none MaxExpected = %v", got)
	}
	if got := New(Uniform, 4, 1).MaxExpected(base); got != base+sim.Duration(0.04*float64(base)) {
		t.Errorf("uniform MaxExpected = %v", got)
	}
	if got := New(Gaussian, 4, 1).MaxExpected(base); got != base+sim.Duration(3*0.04*float64(base)) {
		t.Errorf("gaussian MaxExpected = %v", got)
	}
}

func TestNegativePercentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative percent did not panic")
		}
	}()
	New(Uniform, -1, 1)
}

// Property: every sample from every model is at least the floor and the
// region has exactly n entries.
func TestQuickRegionShape(t *testing.T) {
	f := func(kindRaw uint8, pct uint8, n uint8, seed int64) bool {
		kind := Kind(int(kindRaw) % 5)
		threads := int(n%32) + 1
		m := New(kind, float64(pct%50), seed)
		region := m.Region(threads, base)
		if len(region) != threads {
			return false
		}
		for _, d := range region {
			if d <= 0 {
				return false
			}
			if kind != Gaussian && d < base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicStretchesCompute(t *testing.T) {
	// 10% duty cycle: accumulating 10ms of CPU takes about 10/0.9 = 11.1ms
	// of wall time (within one firing of slack).
	m := NewPeriodic(10, sim.Millisecond, 9)
	for trial := 0; trial < 50; trial++ {
		for _, d := range m.Region(4, base) {
			if d < base {
				t.Fatalf("periodic compute %v below base %v", d, base)
			}
			if d > m.MaxExpected(base) {
				t.Fatalf("periodic compute %v above MaxExpected %v", d, m.MaxExpected(base))
			}
		}
	}
}

func TestPeriodicPhaseVariesAcrossThreads(t *testing.T) {
	m := NewPeriodic(10, sim.Millisecond, 11)
	region := m.Region(16, base)
	distinct := map[sim.Duration]bool{}
	for _, d := range region {
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("periodic noise produced identical stretches: %v", region)
	}
}

func TestPeriodicZeroDutyIsExact(t *testing.T) {
	m := NewPeriodic(0, sim.Millisecond, 1)
	for _, d := range m.Region(4, base) {
		if d != base {
			t.Fatalf("0%% duty compute = %v, want %v", d, base)
		}
	}
}

func TestPeriodicShortComputeMayMissDaemon(t *testing.T) {
	// A compute much shorter than the period sometimes fits entirely
	// before the first firing.
	m := NewPeriodic(10, 10*sim.Millisecond, 3)
	short := 100 * sim.Microsecond
	exact := 0
	for trial := 0; trial < 200; trial++ {
		for _, d := range m.Region(1, short) {
			if d == short {
				exact++
			}
		}
	}
	if exact == 0 {
		t.Fatal("short compute never escaped the daemon; phase sampling broken")
	}
}

func TestNewPeriodicValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero period": func() { NewPeriodic(10, 0, 1) },
		"full duty":   func() { New(Periodic, 100, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAccessors(t *testing.T) {
	m := New(Uniform, 4, 1)
	if m.Kind() != Uniform {
		t.Fatalf("Kind = %v", m.Kind())
	}
	if m.Percent() != 4 {
		t.Fatalf("Percent = %v, want 4", m.Percent())
	}
}

func TestRegionZeroThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-thread region did not panic")
		}
	}()
	New(None, 0, 1).Region(0, base)
}
