// Package prof implements an mpiP-style MPI profiler for the simulated
// runtime: per-rank accounting of virtual time spent inside MPI calls,
// aggregated into the application-time / MPI-time report the paper uses to
// project SNAP's partitioned-communication speedup (§4.8).
//
// mpiP intercepts MPI calls at link time; here the application threads its
// calls through Rank.Call, which measures the virtual-time span of the call
// on the calling proc.
package prof

import (
	"fmt"
	"sort"

	"partmb/internal/sim"
)

// Profiler accumulates per-rank MPI timing.
type Profiler struct {
	ranks map[int]*Rank
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{ranks: make(map[int]*Rank)}
}

// Rank returns (creating if needed) the accumulator for one rank.
func (pf *Profiler) Rank(id int) *Rank {
	r, ok := pf.ranks[id]
	if !ok {
		r = &Rank{id: id, byCall: make(map[string]*CallStats)}
		pf.ranks[id] = r
	}
	return r
}

// Rank accumulates one process's profile.
type Rank struct {
	id       int
	appStart sim.Time
	appEnd   sim.Time
	started  bool
	byCall   map[string]*CallStats
}

// CallStats aggregates one MPI entry point on one rank.
type CallStats struct {
	Name  string
	Count int64
	Time  sim.Duration
}

// Begin marks the start of the application's measured region.
func (r *Rank) Begin(p *sim.Proc) {
	r.appStart = p.Now()
	r.started = true
}

// End marks the end of the application's measured region.
func (r *Rank) End(p *sim.Proc) {
	if !r.started {
		panic("prof: End before Begin")
	}
	r.appEnd = p.Now()
}

// Call measures fn as one invocation of the named MPI entry point.
func (r *Rank) Call(p *sim.Proc, name string, fn func()) {
	start := p.Now()
	fn()
	cs, ok := r.byCall[name]
	if !ok {
		cs = &CallStats{Name: name}
		r.byCall[name] = cs
	}
	cs.Count++
	cs.Time += p.Now().Sub(start)
}

// AppTime returns the measured region's span.
func (r *Rank) AppTime() sim.Duration {
	if !r.started || r.appEnd < r.appStart {
		return 0
	}
	return r.appEnd.Sub(r.appStart)
}

// MPITime returns the total time inside MPI calls.
func (r *Rank) MPITime() sim.Duration {
	var sum sim.Duration
	for _, cs := range r.byCall {
		sum += cs.Time
	}
	return sum
}

// Report is the aggregate profile across ranks, mirroring mpiP's header
// lines ("AppTime", "MPITime", "MPI%").
type Report struct {
	Ranks int
	// AppTime is the sum of per-rank application times (mpiP convention).
	AppTime sim.Duration
	// MPITime is the sum of per-rank MPI times.
	MPITime sim.Duration
	// Calls aggregates each entry point across ranks, sorted by time
	// descending.
	Calls []CallStats
}

// MPIFraction returns MPITime/AppTime in [0, 1].
func (rep *Report) MPIFraction() float64 {
	if rep.AppTime <= 0 {
		return 0
	}
	return float64(rep.MPITime) / float64(rep.AppTime)
}

// String renders the report header like mpiP's output.
func (rep *Report) String() string {
	s := fmt.Sprintf("@ ranks=%d AppTime=%v MPITime=%v MPI%%=%.2f\n",
		rep.Ranks, rep.AppTime, rep.MPITime, 100*rep.MPIFraction())
	for _, cs := range rep.Calls {
		s += fmt.Sprintf("  %-12s calls=%-8d time=%v\n", cs.Name, cs.Count, cs.Time)
	}
	return s
}

// Report aggregates all ranks.
func (pf *Profiler) Report() Report {
	rep := Report{Ranks: len(pf.ranks)}
	agg := make(map[string]*CallStats)
	for _, r := range pf.ranks {
		rep.AppTime += r.AppTime()
		rep.MPITime += r.MPITime()
		for name, cs := range r.byCall {
			a, ok := agg[name]
			if !ok {
				a = &CallStats{Name: name}
				agg[name] = a
			}
			a.Count += cs.Count
			a.Time += cs.Time
		}
	}
	for _, a := range agg {
		rep.Calls = append(rep.Calls, *a)
	}
	sort.Slice(rep.Calls, func(i, j int) bool {
		if rep.Calls[i].Time != rep.Calls[j].Time {
			return rep.Calls[i].Time > rep.Calls[j].Time
		}
		return rep.Calls[i].Name < rep.Calls[j].Name
	})
	return rep
}
