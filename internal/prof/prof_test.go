package prof

import (
	"strings"
	"testing"

	"partmb/internal/sim"
)

func TestCallAccounting(t *testing.T) {
	s := sim.New()
	pf := New()
	s.Spawn("app", func(p *sim.Proc) {
		r := pf.Rank(0)
		r.Begin(p)
		p.Sleep(6 * sim.Millisecond) // compute
		r.Call(p, "MPI_Recv", func() { p.Sleep(3 * sim.Millisecond) })
		r.Call(p, "MPI_Recv", func() { p.Sleep(sim.Millisecond) })
		r.End(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rep := pf.Report()
	if rep.AppTime != 10*sim.Millisecond {
		t.Fatalf("AppTime = %v, want 10ms", rep.AppTime)
	}
	if rep.MPITime != 4*sim.Millisecond {
		t.Fatalf("MPITime = %v, want 4ms", rep.MPITime)
	}
	if f := rep.MPIFraction(); f != 0.4 {
		t.Fatalf("MPIFraction = %v, want 0.4", f)
	}
	if len(rep.Calls) != 1 || rep.Calls[0].Count != 2 {
		t.Fatalf("calls = %+v", rep.Calls)
	}
}

func TestMultiRankAggregation(t *testing.T) {
	s := sim.New()
	pf := New()
	for id := 0; id < 4; id++ {
		id := id
		s.Spawn("app", func(p *sim.Proc) {
			r := pf.Rank(id)
			r.Begin(p)
			p.Sleep(8 * sim.Millisecond)
			r.Call(p, "MPI_Send", func() { p.Sleep(2 * sim.Millisecond) })
			r.End(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rep := pf.Report()
	if rep.Ranks != 4 {
		t.Fatalf("ranks = %d", rep.Ranks)
	}
	if rep.AppTime != 40*sim.Millisecond || rep.MPITime != 8*sim.Millisecond {
		t.Fatalf("aggregate = %v/%v", rep.MPITime, rep.AppTime)
	}
}

func TestCallsSortedByTime(t *testing.T) {
	s := sim.New()
	pf := New()
	s.Spawn("app", func(p *sim.Proc) {
		r := pf.Rank(0)
		r.Begin(p)
		r.Call(p, "MPI_Isend", func() { p.Sleep(sim.Millisecond) })
		r.Call(p, "MPI_Waitall", func() { p.Sleep(5 * sim.Millisecond) })
		r.Call(p, "MPI_Recv", func() { p.Sleep(2 * sim.Millisecond) })
		r.End(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rep := pf.Report()
	if rep.Calls[0].Name != "MPI_Waitall" || rep.Calls[2].Name != "MPI_Isend" {
		t.Fatalf("sort order wrong: %+v", rep.Calls)
	}
	out := rep.String()
	if !strings.Contains(out, "MPI_Waitall") || !strings.Contains(out, "MPI%") {
		t.Fatalf("report rendering missing fields:\n%s", out)
	}
}

func TestEndBeforeBeginPanics(t *testing.T) {
	s := sim.New()
	pf := New()
	var panicked bool
	s.Spawn("app", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		pf.Rank(0).End(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("End before Begin did not panic")
	}
}

func TestEmptyReport(t *testing.T) {
	rep := New().Report()
	if rep.MPIFraction() != 0 || rep.Ranks != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
}
