package netsim

import (
	"testing"

	"partmb/internal/sim"
)

func TestFabricIntraWingUncongested(t *testing.T) {
	f := NewFabric(NewDragonflyPlus(4, 900*sim.Nanosecond, 5*sim.Microsecond), 8, 2e9)
	if d := f.CrossDelay(0, 0, 3, 1<<20); d != 0 {
		t.Fatalf("intra-wing delay = %v, want 0", d)
	}
	if f.Crossings() != 0 {
		t.Fatalf("crossings = %d", f.Crossings())
	}
	if f.Latency(0, 3) != 900*sim.Nanosecond || f.Latency(0, 4) != 5*sim.Microsecond {
		t.Fatalf("base latencies wrong: %v %v", f.Latency(0, 3), f.Latency(0, 4))
	}
}

func TestFabricCrossWingQueues(t *testing.T) {
	// 1 MiB at 1 GB/s ~ 1048576 ns of serialization per transfer.
	f := NewFabric(NewDragonflyPlus(4, 900*sim.Nanosecond, 5*sim.Microsecond), 8, 1e9)
	size := int64(1 << 20)
	ser := sim.Duration(float64(size) / 1e9 * 1e9)

	d1 := f.CrossDelay(0, 0, 4, size)
	if d1 != ser {
		t.Fatalf("first transfer delay = %v, want %v", d1, ser)
	}
	// Second transfer from the same source queues behind the first.
	d2 := f.CrossDelay(0, 0, 4, size)
	if d2 != 2*ser {
		t.Fatalf("second transfer delay = %v, want %v", d2, 2*ser)
	}
	// A different source has its own share: no queuing.
	if d3 := f.CrossDelay(0, 1, 4, size); d3 != ser {
		t.Fatalf("other-source delay = %v, want %v", d3, ser)
	}
	if f.QueuedDelay() != ser {
		t.Fatalf("queued = %v, want %v", f.QueuedDelay(), ser)
	}
	if f.Crossings() != 3 {
		t.Fatalf("crossings = %d, want 3", f.Crossings())
	}
	// Once the share drains, no more queuing.
	if d4 := f.CrossDelay(sim.Time(10*ser), 0, 4, size); d4 != ser {
		t.Fatalf("post-drain delay = %v, want %v", d4, ser)
	}
}

func TestMinCrossLatency(t *testing.T) {
	blockOf := func(shards, ranks int) func(int) int {
		per := (ranks + shards - 1) / shards
		return func(r int) int { return r / per }
	}

	u := Uniform{L: 900 * sim.Nanosecond}
	if got := MinCrossLatency(u, 8, blockOf(2, 8)); got != u.L {
		t.Fatalf("uniform cross latency = %v", got)
	}
	if got := MinCrossLatency(u, 8, blockOf(1, 8)); got != 0 {
		t.Fatalf("single-shard cross latency = %v, want 0", got)
	}

	d := NewDragonflyPlus(4, 900*sim.Nanosecond, 5*sim.Microsecond)
	// Shards aligned with wings: the cheapest cross-shard pair is inter-wing.
	if got := MinCrossLatency(d, 8, blockOf(2, 8)); got != d.Inter {
		t.Fatalf("wing-aligned cross latency = %v, want %v", got, d.Inter)
	}
	// Misaligned shards split a wing: intra-wing pairs cross shards.
	if got := MinCrossLatency(d, 8, blockOf(4, 8)); got != d.Intra {
		t.Fatalf("misaligned cross latency = %v, want %v", got, d.Intra)
	}

	f := NewFabric(d, 8, 1e9)
	if got := MinCrossLatency(f, 8, blockOf(2, 8)); got != d.Inter {
		t.Fatalf("fabric cross latency = %v, want %v", got, d.Inter)
	}
}
