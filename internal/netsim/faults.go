package netsim

import (
	"fmt"
	"math/rand"

	"partmb/internal/sim"
)

// Faults injects link-level message loss. InfiniBand links are reliable at
// the transport layer: a lost packet is retransmitted after a timeout rather
// than surfacing as an error, so injection shows up as latency spikes. Each
// transmission attempt is lost independently with DropProb; a message that
// is dropped k times in a row arrives k*RetransmitTimeout late.
//
// Faults are deterministic for a seed, so experiments with injected loss
// remain exactly reproducible.
type Faults struct {
	dropProb float64
	rto      sim.Duration
	rng      *rand.Rand

	// Retransmits counts injected retransmissions (for reporting).
	Retransmits int64
}

// NewFaults builds a fault model. dropProb must be in [0, 1); the
// retransmit timeout must be positive when dropProb > 0.
func NewFaults(dropProb float64, rto sim.Duration, seed int64) *Faults {
	if dropProb < 0 || dropProb >= 1 {
		panic(fmt.Sprintf("netsim: drop probability %v outside [0,1)", dropProb))
	}
	if dropProb > 0 && rto <= 0 {
		panic("netsim: retransmit timeout must be positive")
	}
	return &Faults{
		dropProb: dropProb,
		rto:      rto,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Delay samples the extra delivery delay for one message: zero when the
// first transmission gets through, k*RTO after k consecutive losses.
func (f *Faults) Delay() sim.Duration {
	if f == nil || f.dropProb == 0 {
		return 0
	}
	var k int64
	for f.rng.Float64() < f.dropProb {
		k++
	}
	f.Retransmits += k
	return sim.Duration(k) * f.rto
}
