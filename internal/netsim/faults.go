package netsim

import (
	"fmt"
	"math/rand"

	"partmb/internal/sim"
)

// Faults injects link-level message loss. InfiniBand links are reliable at
// the transport layer: a lost packet is retransmitted after a timeout rather
// than surfacing as an error, so injection shows up as latency spikes. Each
// transmission attempt is lost independently with DropProb; a message that
// is dropped k times in a row arrives k*RetransmitTimeout late.
//
// Faults are deterministic for a seed, so experiments with injected loss
// remain exactly reproducible.
type Faults struct {
	dropProb float64
	rto      sim.Duration
	rng      *rand.Rand

	// Retransmits counts injected retransmissions (for reporting).
	Retransmits int64
	// Truncations counts messages whose loss streak hit
	// MaxRetransmitStreak and was cut short, so reports can flag that the
	// injected delay distribution was clipped.
	Truncations int64
}

// MaxRetransmitStreak bounds the consecutive losses injected on a single
// message. Real transports give up and reset the connection long before
// this; for the simulator the bound keeps near-1 drop probabilities from
// stalling a cell in a nearly-endless RNG loop (at dropProb=0.99 the
// expected streak is 99 draws, but the tail is unbounded without a cap).
const MaxRetransmitStreak = 100

// NewFaults builds a fault model. dropProb must be in [0, 1); the
// retransmit timeout must be positive when dropProb > 0.
func NewFaults(dropProb float64, rto sim.Duration, seed int64) *Faults {
	if dropProb < 0 || dropProb >= 1 {
		panic(fmt.Sprintf("netsim: drop probability %v outside [0,1)", dropProb))
	}
	if dropProb > 0 && rto <= 0 {
		panic("netsim: retransmit timeout must be positive")
	}
	return &Faults{
		dropProb: dropProb,
		rto:      rto,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Delay samples the extra delivery delay for one message: zero when the
// first transmission gets through, k*RTO after k consecutive losses, with
// k capped at MaxRetransmitStreak (Truncations counts clipped streaks).
func (f *Faults) Delay() sim.Duration {
	if f == nil || f.dropProb == 0 {
		return 0
	}
	var k int64
	for f.rng.Float64() < f.dropProb {
		k++
		if k >= MaxRetransmitStreak {
			f.Truncations++
			break
		}
	}
	f.Retransmits += k
	return sim.Duration(k) * f.rto
}
