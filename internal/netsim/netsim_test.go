package netsim

import (
	"testing"
	"testing/quick"

	"partmb/internal/sim"
)

func TestEDRValidates(t *testing.T) {
	if err := EDR().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Latency = -1 },
		func(p *Params) { p.Bandwidth = 0 },
		func(p *Params) { p.SendOverhead = -1 },
		func(p *Params) { p.RecvOverhead = -1 },
		func(p *Params) { p.EagerThreshold = -1 },
		func(p *Params) { p.RendezvousSetup = -1 },
	}
	for i, mutate := range mutations {
		p := EDR()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d passed Validate", i)
		}
	}
}

func TestSerializationTime(t *testing.T) {
	p := &Params{Bandwidth: 1e9, Latency: 0, EagerThreshold: 1 << 30}
	if got := p.SerializationTime(1e9); got != sim.Second {
		t.Fatalf("1GB at 1GB/s = %v, want 1s", got)
	}
	if got := p.SerializationTime(0); got != 0 {
		t.Fatalf("0 bytes = %v, want 0", got)
	}
}

func TestEagerRendezvousBoundary(t *testing.T) {
	p := EDR()
	if !p.Eager(p.EagerThreshold) {
		t.Fatal("message at threshold should be eager")
	}
	if p.Eager(p.EagerThreshold + 1) {
		t.Fatal("message above threshold should be rendezvous")
	}
	if p.HandshakeCost(1) != 0 {
		t.Fatal("eager message has a handshake cost")
	}
	want := 2*p.Latency + p.RendezvousSetup
	if got := p.HandshakeCost(1 << 20); got != want {
		t.Fatalf("rendezvous handshake = %v, want %v", got, want)
	}
}

func TestInjectAccountsOverheadAndBandwidth(t *testing.T) {
	p := EDR()
	n := NewNIC(p)
	size := int64(12000) // 1us at 12GB/s
	txDone, arrive := n.Inject(0, size, 0)
	wantTx := p.SendOverhead + p.SerializationTime(size)
	if txDone != sim.Time(wantTx) {
		t.Fatalf("txDone = %v, want %v", txDone, wantTx)
	}
	if arrive != txDone.Add(p.Latency) {
		t.Fatalf("arrive = %v, want txDone+latency", arrive)
	}
}

func TestInjectSerializes(t *testing.T) {
	n := NewNIC(EDR())
	size := int64(120000)
	tx1, _ := n.Inject(0, size, 0)
	tx2, _ := n.Inject(0, size, 0) // same instant: must queue behind tx1
	if tx2 <= tx1 {
		t.Fatalf("second injection tx=%v not after first %v", tx2, tx1)
	}
	per := sim.Duration(tx1)
	if got := tx2.Sub(tx1); got != per {
		t.Fatalf("spacing = %v, want %v (per-message cost)", got, per)
	}
}

func TestInjectAfterIdleStartsImmediately(t *testing.T) {
	n := NewNIC(EDR())
	n.Inject(0, 1000, 0)
	idle := n.TxIdleAt()
	late := idle.Add(5 * sim.Microsecond)
	txDone, _ := n.Inject(late, 1000, 0)
	if txDone <= late {
		t.Fatal("injection did not progress")
	}
	wantStartBased := late.Add(EDR().SendOverhead + EDR().SerializationTime(1000))
	if txDone != wantStartBased {
		t.Fatalf("txDone = %v, want %v (idle NIC starts at request time)", txDone, wantStartBased)
	}
}

func TestInjectExtraCost(t *testing.T) {
	n := NewNIC(EDR())
	extra := 3 * sim.Microsecond
	base, _ := NewNIC(EDR()).Inject(0, 1000, 0)
	with, _ := n.Inject(0, 1000, extra)
	if with.Sub(base) != extra {
		t.Fatalf("extra cost added %v, want %v", with.Sub(base), extra)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	n := NewNIC(EDR())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	n.Inject(0, -1, 0)
}

func TestDeliverSerializesAtReceiver(t *testing.T) {
	p := EDR()
	n := NewNIC(p)
	d1 := n.Deliver(0)
	d2 := n.Deliver(0)
	if d1 != sim.Time(p.RecvOverhead) {
		t.Fatalf("first delivery = %v, want %v", d1, p.RecvOverhead)
	}
	if d2 != d1.Add(p.RecvOverhead) {
		t.Fatalf("second delivery = %v, want %v", d2, d1.Add(p.RecvOverhead))
	}
	// A late arrival starts fresh.
	late := d2.Add(sim.Millisecond)
	d3 := n.Deliver(late)
	if d3 != late.Add(p.RecvOverhead) {
		t.Fatalf("late delivery = %v, want %v", d3, late.Add(p.RecvOverhead))
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := NewNIC(EDR())
	n.Inject(0, 100, 0)
	n.Inject(0, 200, 0)
	st := n.Stats()
	if st.Messages != 2 || st.Bytes != 300 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TxBusy <= 0 {
		t.Fatal("TxBusy not accumulated")
	}
}

// Property: injection completion times are strictly monotone for positive-
// cost messages, and arrive = txDone + latency always.
func TestQuickInjectMonotone(t *testing.T) {
	f := func(sizes []uint16, gaps []uint8) bool {
		n := NewNIC(EDR())
		now := sim.Time(0)
		last := sim.Time(-1)
		for i, sz := range sizes {
			if i < len(gaps) {
				now = now.Add(sim.Duration(gaps[i]))
			}
			txDone, arrive := n.Inject(now, int64(sz), 0)
			if txDone <= last {
				return false
			}
			if arrive != txDone.Add(EDR().Latency) {
				return false
			}
			last = txDone
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total bytes in stats equals the sum of injected sizes.
func TestQuickStatsConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		n := NewNIC(EDR())
		var want int64
		for _, sz := range sizes {
			n.Inject(0, int64(sz), 0)
			want += int64(sz)
		}
		st := n.Stats()
		return st.Bytes == want && st.Messages == int64(len(sizes))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHDRPreset(t *testing.T) {
	p := HDR()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Bandwidth <= EDR().Bandwidth {
		t.Fatal("HDR not faster than EDR")
	}
	if p.Latency >= EDR().Latency {
		t.Fatal("HDR latency not below EDR")
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := EDR()
	if got := p.SmallMessageLatency(); got != p.SendOverhead+p.Latency+p.RecvOverhead {
		t.Fatalf("SmallMessageLatency = %v", got)
	}
	if got := p.MaxMessageRate(); got != 1e9/float64(p.SendOverhead) {
		t.Fatalf("MaxMessageRate = %v", got)
	}
	if (&Params{Bandwidth: 1}).MaxMessageRate() != 0 {
		t.Fatal("zero-overhead rate should report 0")
	}
	rl := p.RendezvousLatency(1 << 20)
	if rl <= p.SmallMessageLatency()*3 {
		t.Fatalf("RendezvousLatency(1MiB) = %v, implausibly small", rl)
	}
}
