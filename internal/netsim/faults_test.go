package netsim

import (
	"math"
	"testing"

	"partmb/internal/sim"
)

func TestNilFaultsNoDelay(t *testing.T) {
	var f *Faults
	if f.Delay() != 0 {
		t.Fatal("nil faults delayed a message")
	}
}

func TestZeroProbNoDelay(t *testing.T) {
	f := NewFaults(0, sim.Millisecond, 1)
	for i := 0; i < 100; i++ {
		if f.Delay() != 0 {
			t.Fatal("0-probability faults delayed a message")
		}
	}
}

func TestDelayMeanMatchesGeometric(t *testing.T) {
	p := 0.2
	rto := 100 * sim.Microsecond
	f := NewFaults(p, rto, 7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(f.Delay())
	}
	mean := sum / n
	want := p / (1 - p) * float64(rto) // E[k] for geometric losses
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean delay %.3g, want ~%.3g", mean, want)
	}
	if f.Retransmits == 0 {
		t.Fatal("no retransmits counted")
	}
}

func TestDelayDeterministicForSeed(t *testing.T) {
	a := NewFaults(0.3, sim.Microsecond, 99)
	b := NewFaults(0.3, sim.Microsecond, 99)
	for i := 0; i < 1000; i++ {
		if a.Delay() != b.Delay() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDelayStreakBounded(t *testing.T) {
	// At dropProb=0.99 the expected loss streak is 99 draws with an
	// unbounded tail; the cap must keep every sampled delay finite and
	// count the clipped streaks.
	f := NewFaults(0.99, sim.Millisecond, 42)
	max := sim.Duration(MaxRetransmitStreak) * sim.Millisecond
	for i := 0; i < 5000; i++ {
		if d := f.Delay(); d > max {
			t.Fatalf("delay %v exceeds the %v streak cap", d, max)
		}
	}
	if f.Truncations == 0 {
		t.Fatal("no truncations counted at dropProb=0.99")
	}
	if f.Truncations > 5000 {
		t.Fatalf("%d truncations for 5000 messages", f.Truncations)
	}
}

func TestFaultsValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"prob 1":   func() { NewFaults(1, sim.Microsecond, 1) },
		"negative": func() { NewFaults(-0.1, sim.Microsecond, 1) },
		"zero rto": func() { NewFaults(0.5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestInjectWithFaultsStallsLink(t *testing.T) {
	// Go-back-N retransmission: the send engine is held for the
	// retransmit delay, so later messages queue behind it and arrival
	// order is preserved.
	faulty := NewNIC(EDR())
	faulty.SetFaults(NewFaults(0.9, sim.Millisecond, 3))
	clean := NewNIC(EDR())
	fDone, fArrive := faulty.Inject(0, 1024, 0)
	cDone, _ := clean.Inject(0, 1024, 0)
	if fDone <= cDone {
		t.Fatalf("faulty txDone %v not after clean %v (retransmit did not stall)", fDone, cDone)
	}
	if fArrive != fDone.Add(EDR().Latency) {
		t.Fatalf("arrival %v, want txDone+latency", fArrive)
	}
	if faulty.TxIdleAt() != fDone {
		t.Fatalf("tx engine idle at %v, want %v", faulty.TxIdleAt(), fDone)
	}
}
