package netsim

import (
	"strings"
	"testing"
	"testing/quick"

	"partmb/internal/sim"
)

func TestUniformTopology(t *testing.T) {
	u := Uniform{L: 900 * sim.Nanosecond}
	if u.Latency(0, 5) != u.Latency(3, 1) {
		t.Fatal("uniform latency differs across pairs")
	}
	if !strings.Contains(u.Describe(), "uniform") {
		t.Fatalf("Describe = %q", u.Describe())
	}
}

func TestDragonflyPlusWings(t *testing.T) {
	d := NewDragonflyPlus(4, 900*sim.Nanosecond, 1800*sim.Nanosecond)
	if d.Wing(3) != 0 || d.Wing(4) != 1 || d.Wing(11) != 2 {
		t.Fatalf("wing mapping wrong: %d %d %d", d.Wing(3), d.Wing(4), d.Wing(11))
	}
	if got := d.Latency(0, 3); got != 900*sim.Nanosecond {
		t.Fatalf("intra-wing latency = %v", got)
	}
	if got := d.Latency(0, 4); got != 1800*sim.Nanosecond {
		t.Fatalf("inter-wing latency = %v", got)
	}
	if !strings.Contains(d.Describe(), "dragonfly+") {
		t.Fatalf("Describe = %q", d.Describe())
	}
}

func TestDragonflyPlusValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero wing":         func() { NewDragonflyPlus(0, 1, 2) },
		"inter below intra": func() { NewDragonflyPlus(4, 2, 1) },
		"negative intra":    func() { NewDragonflyPlus(4, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: dragonfly latency is symmetric and bounded by [intra, inter].
func TestQuickDragonflySymmetry(t *testing.T) {
	d := NewDragonflyPlus(8, sim.Microsecond, 2*sim.Microsecond)
	f := func(a, b uint8) bool {
		la := d.Latency(int(a), int(b))
		lb := d.Latency(int(b), int(a))
		return la == lb && la >= d.Intra && la <= d.Inter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
