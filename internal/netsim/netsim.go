// Package netsim models the interconnect: per-message software overheads,
// eager/rendezvous protocol selection, serialized NIC injection, link
// latency, and link bandwidth.
//
// The model is LogGP-flavoured. Each rank owns a NIC. Sending a message
// occupies the sender's injection engine for
//
//	o_send + extra + size/bandwidth
//
// where extra carries situational costs (cross-socket doorbell writes, cold
// cache DRAM fetches of the payload). Injections queue FIFO, which is what
// saturates the link for large messages and produces the perceived-bandwidth
// decline and availability drop-off of the paper — those effects are
// emergent, not special-cased. The last byte then arrives after the wire
// latency, and the receiving NIC spends o_recv of serialized processing per
// message before delivery.
//
// Messages above the eager threshold pay a rendezvous handshake (RTS/CTS,
// one round trip) before data can flow, and cannot start until the receive
// is posted.
//
// Defaults approximate the paper's testbed: EDR InfiniBand (~100 Gb/s) with
// a single switch between any two ranks.
package netsim

import (
	"fmt"

	"partmb/internal/sim"
)

// Params holds the interconnect cost parameters.
type Params struct {
	// Latency is the one-way wire+switch latency (last bit in to first bit
	// out at the far NIC).
	Latency sim.Duration
	// Bandwidth is the link bandwidth in bytes per second.
	Bandwidth float64
	// SendOverhead is the per-message sender-side software cost: descriptor
	// setup, matching bookkeeping, doorbell.
	SendOverhead sim.Duration
	// RecvOverhead is the per-message receiver-side software cost: CQ
	// polling, matching, completion.
	RecvOverhead sim.Duration
	// EagerThreshold is the largest message sent eagerly; larger messages
	// use a rendezvous protocol.
	EagerThreshold int64
	// RendezvousSetup is the extra software cost of the RTS/CTS exchange on
	// top of one round trip of latency.
	RendezvousSetup sim.Duration
}

// EDR returns parameters approximating one EDR InfiniBand hop as on the
// paper's Niagara cluster (single switch within a Dragonfly+ wing).
func EDR() *Params {
	return &Params{
		Latency:         900 * sim.Nanosecond,
		Bandwidth:       12e9, // ~96 Gb/s effective of the 100 Gb/s line rate
		SendOverhead:    500 * sim.Nanosecond,
		RecvOverhead:    300 * sim.Nanosecond,
		EagerThreshold:  16 << 10,
		RendezvousSetup: 400 * sim.Nanosecond,
	}
}

// HDR returns parameters approximating one HDR InfiniBand hop (200 Gb/s
// generation): double EDR's bandwidth with slightly lower latency, for
// exploring how the paper's crossovers move on newer fabrics.
func HDR() *Params {
	return &Params{
		Latency:         800 * sim.Nanosecond,
		Bandwidth:       24e9,
		SendOverhead:    450 * sim.Nanosecond,
		RecvOverhead:    280 * sim.Nanosecond,
		EagerThreshold:  16 << 10,
		RendezvousSetup: 350 * sim.Nanosecond,
	}
}

// Validate checks the parameters for consistency.
func (p *Params) Validate() error {
	if p.Latency < 0 || p.SendOverhead < 0 || p.RecvOverhead < 0 || p.RendezvousSetup < 0 {
		return fmt.Errorf("netsim: negative cost parameter")
	}
	if p.Bandwidth <= 0 {
		return fmt.Errorf("netsim: Bandwidth must be positive")
	}
	if p.EagerThreshold < 0 {
		return fmt.Errorf("netsim: negative EagerThreshold")
	}
	return nil
}

// SerializationTime returns size/bandwidth as a duration.
func (p *Params) SerializationTime(size int64) sim.Duration {
	if size <= 0 {
		return 0
	}
	return sim.Duration(float64(size) / p.Bandwidth * 1e9)
}

// Eager reports whether a message of the given size is sent eagerly.
func (p *Params) Eager(size int64) bool { return size <= p.EagerThreshold }

// HandshakeCost returns the extra pre-transfer cost for a message of the
// given size: zero for eager messages, one latency round trip plus setup for
// rendezvous.
func (p *Params) HandshakeCost(size int64) sim.Duration {
	if p.Eager(size) {
		return 0
	}
	return 2*p.Latency + p.RendezvousSetup
}

// Stats accumulates NIC traffic counters.
type Stats struct {
	Messages int64
	Bytes    int64
	// TxBusy is the total time the injection engine was occupied.
	TxBusy sim.Duration
}

// NIC is the per-rank network interface. All methods must be called from
// simulation context (a proc or an event callback); the kernel's one-runner
// guarantee makes them safe without locks.
type NIC struct {
	params *Params
	faults *Faults
	txBusy sim.Time
	rxBusy sim.Time
	stats  Stats
}

// NewNIC returns a NIC using the given cost parameters.
func NewNIC(params *Params) *NIC {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &NIC{params: params}
}

// SetFaults installs a link fault model on this NIC's transmissions; nil
// disables injection.
func (n *NIC) SetFaults(f *Faults) { n.faults = f }

// Params returns the NIC's cost parameters.
func (n *NIC) Params() *Params { return n.params }

// Stats returns a copy of the traffic counters.
func (n *NIC) Stats() Stats { return n.stats }

// Inject models queueing a message of the given size for transmission at
// time now, with extra per-message cost (cross-socket penalty, cold-cache
// payload fetch). It returns when the local injection completes (txDone,
// when the sending CPU could observe local completion) and when the last
// byte arrives at the remote NIC (arrive).
func (n *NIC) Inject(now sim.Time, size int64, extra sim.Duration) (txDone, arrive sim.Time) {
	return n.InjectLat(now, size, extra, n.params.Latency)
}

// InjectLat is Inject with an explicit one-way wire latency, used when a
// Topology makes latency pair-dependent.
func (n *NIC) InjectLat(now sim.Time, size int64, extra, oneWay sim.Duration) (txDone, arrive sim.Time) {
	if size < 0 {
		panic("netsim: negative message size")
	}
	if oneWay < 0 {
		panic("netsim: negative latency")
	}
	start := now
	if n.txBusy > start {
		start = n.txBusy
	}
	// Injected link faults follow InfiniBand's reliable-connection
	// semantics: a lost packet is retransmitted (go-back-N), stalling the
	// send engine and preserving arrival order.
	cost := n.params.SendOverhead + extra + n.params.SerializationTime(size) + n.faults.Delay()
	txDone = start.Add(cost)
	n.txBusy = txDone
	n.stats.Messages++
	n.stats.Bytes += size
	n.stats.TxBusy += cost
	return txDone, txDone.Add(oneWay)
}

// TxIdleAt returns the earliest time the injection engine is free.
func (n *NIC) TxIdleAt() sim.Time { return n.txBusy }

// Deliver models receiver-side processing of a message whose last byte
// arrived at time arrive; it returns the time the payload is visible to the
// receiving process. Per-message processing is serialized on the receiving
// NIC.
func (n *NIC) Deliver(arrive sim.Time) sim.Time {
	start := arrive
	if n.rxBusy > start {
		start = n.rxBusy
	}
	done := start.Add(n.params.RecvOverhead)
	n.rxBusy = done
	return done
}

// SmallMessageLatency returns the model's pre-posted eager half-round-trip
// floor: o_send + L + o_recv (excluding MPI-layer call costs).
func (p *Params) SmallMessageLatency() sim.Duration {
	return p.SendOverhead + p.Latency + p.RecvOverhead
}

// MaxMessageRate returns the injection-rate ceiling for zero-byte messages,
// in messages per second (bounded by the per-message send overhead).
func (p *Params) MaxMessageRate() float64 {
	if p.SendOverhead <= 0 {
		return 0
	}
	return 1e9 / float64(p.SendOverhead)
}

// RendezvousLatency returns the pre-posted rendezvous latency for a message
// of the given size: RTS and CTS control flights plus the payload flight.
func (p *Params) RendezvousLatency(size int64) sim.Duration {
	control := p.SendOverhead + p.Latency + p.RecvOverhead
	data := p.RendezvousSetup + p.SendOverhead + p.SerializationTime(size) + p.Latency + p.RecvOverhead
	return 2*control + data
}
