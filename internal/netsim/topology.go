package netsim

import (
	"fmt"

	"partmb/internal/sim"
)

// Topology maps a rank pair to the wire latency between their nodes. The
// paper's point-to-point experiments stay inside one Dragonfly+ wing ("only
// a single switch between any two processes"), which Uniform models; the
// larger SNAP runs necessarily cross wings, which DragonflyPlus models with
// an extra per-hop latency.
type Topology interface {
	// Latency returns the one-way latency between two ranks' nodes.
	Latency(src, dst int) sim.Duration
	// Describe returns a short human-readable description.
	Describe() string
}

// Uniform is a single-switch topology: every pair sees the same latency.
type Uniform struct {
	// L is the one-way latency between any two distinct ranks.
	L sim.Duration
}

// Latency implements Topology. Self-sends stay in the node (loopback
// through the adapter): same cost, as on real adapters.
func (u Uniform) Latency(src, dst int) sim.Duration { return u.L }

// Describe implements Topology.
func (u Uniform) Describe() string {
	return fmt.Sprintf("uniform single-switch, %v", u.L)
}

// DragonflyPlus groups nodes into wings of WingSize; traffic inside a wing
// crosses one leaf switch (Intra), traffic between wings adds the
// spine/global hops (Inter > Intra).
type DragonflyPlus struct {
	// WingSize is the number of ranks per wing (Niagara wings hold
	// hundreds of nodes; experiments here typically use smaller wings to
	// exercise the boundary).
	WingSize int
	// Intra is the one-way latency within a wing.
	Intra sim.Duration
	// Inter is the one-way latency between wings.
	Inter sim.Duration
}

// NewDragonflyPlus validates and builds the topology.
func NewDragonflyPlus(wingSize int, intra, inter sim.Duration) DragonflyPlus {
	if wingSize <= 0 {
		panic("netsim: wing size must be positive")
	}
	if intra < 0 || inter < intra {
		panic("netsim: need 0 <= intra <= inter latency")
	}
	return DragonflyPlus{WingSize: wingSize, Intra: intra, Inter: inter}
}

// Wing returns the wing a rank belongs to.
func (d DragonflyPlus) Wing(rank int) int { return rank / d.WingSize }

// Latency implements Topology.
func (d DragonflyPlus) Latency(src, dst int) sim.Duration {
	if d.Wing(src) == d.Wing(dst) {
		return d.Intra
	}
	return d.Inter
}

// Describe implements Topology.
func (d DragonflyPlus) Describe() string {
	return fmt.Sprintf("dragonfly+ wings of %d, intra %v, inter %v", d.WingSize, d.Intra, d.Inter)
}
