package netsim

import (
	"fmt"

	"partmb/internal/sim"
)

// Congested is a Topology whose inter-group links have occupancy state:
// besides the base latency, a transfer pays a queuing + serialization delay
// on the shared global link. The mutable state must be owned by the source
// rank so a sharded simulation (see sim.ShardGroup) can update it from the
// sender's shard without cross-shard writes.
type Congested interface {
	Topology
	// CrossDelay returns the extra one-way delay for a transfer of size
	// bytes from src to dst requested at time now, updating the occupancy
	// state of src's share of the global link. Must be called from the
	// sender's simulation context, in nondecreasing-time order per source.
	CrossDelay(now sim.Time, src, dst int, size int64) sim.Duration
}

// Fabric is a Dragonfly+ topology with per-link occupancy on the global
// (inter-wing) links. Each rank owns a fair share of its wing's global-link
// bandwidth; inter-wing transfers serialize on that share, so bursts of
// cross-wing traffic from one rank queue behind each other and congestion
// emerges per source. Intra-wing traffic is uncongested (the leaf switch is
// non-blocking, as on the paper's testbed).
type Fabric struct {
	topo DragonflyPlus
	// globalBW is the per-rank share of global-link bandwidth, bytes/second.
	globalBW float64
	// busy[src] is the time src's global-link share is occupied until.
	busy []sim.Time
	// queued[src] accumulates the queuing delay src's transfers suffered.
	queued []sim.Duration
	// crossings[src] counts src's inter-wing transfers.
	crossings []int64
}

// NewFabric builds a congestion-aware fabric over a Dragonfly+ shape for
// the given number of ranks. globalBW is each rank's share of inter-wing
// bandwidth in bytes per second (typically a fraction of Params.Bandwidth:
// wings are tapered).
func NewFabric(topo DragonflyPlus, ranks int, globalBW float64) *Fabric {
	if ranks <= 0 {
		panic("netsim: fabric needs a positive rank count")
	}
	if globalBW <= 0 {
		panic("netsim: fabric global bandwidth must be positive")
	}
	return &Fabric{
		topo:      topo,
		globalBW:  globalBW,
		busy:      make([]sim.Time, ranks),
		queued:    make([]sim.Duration, ranks),
		crossings: make([]int64, ranks),
	}
}

// Latency implements Topology with the underlying Dragonfly+ base latency.
func (f *Fabric) Latency(src, dst int) sim.Duration { return f.topo.Latency(src, dst) }

// Describe implements Topology.
func (f *Fabric) Describe() string {
	return fmt.Sprintf("%s, per-rank global-link share %.2gGB/s", f.topo.Describe(), f.globalBW/1e9)
}

// Wing returns the wing a rank belongs to.
func (f *Fabric) Wing(rank int) int { return f.topo.Wing(rank) }

// CrossDelay implements Congested: intra-wing transfers are free; an
// inter-wing transfer of size bytes queues behind src's earlier global
// transfers and then serializes at the per-rank global share.
func (f *Fabric) CrossDelay(now sim.Time, src, dst int, size int64) sim.Duration {
	if f.topo.Wing(src) == f.topo.Wing(dst) {
		return 0
	}
	start := now
	if f.busy[src] > start {
		start = f.busy[src]
	}
	ser := sim.Duration(0)
	if size > 0 {
		ser = sim.Duration(float64(size) / f.globalBW * 1e9)
	}
	f.busy[src] = start.Add(ser)
	wait := start.Sub(now)
	f.queued[src] += wait
	f.crossings[src]++
	return wait + ser
}

// QueuedDelay returns the total global-link queuing delay suffered across
// all ranks. Call after the simulation has finished.
func (f *Fabric) QueuedDelay() sim.Duration {
	var total sim.Duration
	for _, q := range f.queued {
		total += q
	}
	return total
}

// Crossings returns the total number of inter-wing transfers. Call after
// the simulation has finished.
func (f *Fabric) Crossings() int64 {
	var total int64
	for _, c := range f.crossings {
		total += c
	}
	return total
}

// MinCrossLatency returns the minimum one-way latency between any pair of
// ranks mapped to different shards by shardOf — the natural conservative
// lookahead for a sharded simulation of this topology. It returns 0 when no
// pair crosses shards (a single shard).
func MinCrossLatency(t Topology, ranks int, shardOf func(rank int) int) sim.Duration {
	// Fast path: a uniform topology has one latency everywhere.
	if u, ok := t.(Uniform); ok {
		for r := 1; r < ranks; r++ {
			if shardOf(r) != shardOf(0) {
				return u.L
			}
		}
		return 0
	}
	found := false
	var min sim.Duration
	for a := 0; a < ranks; a++ {
		for b := a + 1; b < ranks; b++ {
			if shardOf(a) == shardOf(b) {
				continue
			}
			l := t.Latency(a, b)
			if lb := t.Latency(b, a); lb < l {
				l = lb
			}
			if !found || l < min {
				found = true
				min = l
			}
		}
	}
	if !found {
		return 0
	}
	return min
}
