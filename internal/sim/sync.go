package sim

// Mutex is a mutual-exclusion lock for procs. Waiters are queued FIFO, so
// lock handoff is fair and deterministic. The zero value is usable but a
// Mutex must not be copied after first use.
type Mutex struct {
	owner   *Proc
	waiters []*Proc
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Waiters returns the number of procs queued on the mutex. The MPI layer uses
// this to model lock-contention penalties under MPI_THREAD_MULTIPLE.
func (m *Mutex) Waiters() int { return len(m.waiters) }

// Lock acquires the mutex, blocking the calling proc until it is available.
func (m *Mutex) Lock(p *Proc) {
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic("sim: recursive Mutex.Lock")
	}
	m.waiters = append(m.waiters, p)
	p.park(parkMutex, 0, 0)
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.owner != nil {
		return false
	}
	m.owner = p
	return true
}

// Unlock releases the mutex. If procs are waiting, ownership transfers to the
// earliest waiter, which is scheduled to resume at the current virtual time.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: Mutex.Unlock by non-owner")
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.owner = next
	p.s.wake(next)
}

// Cond is a condition variable tied to a Mutex, analogous to sync.Cond.
type Cond struct {
	// L is the mutex that must be held when calling Wait.
	L       *Mutex
	waiters []*Proc
}

// NewCond returns a condition variable using l.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// Wait atomically releases c.L, suspends the proc until Signal or Broadcast,
// then reacquires c.L before returning. As with sync.Cond, the awaited
// predicate must be rechecked in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	c.L.Unlock(p)
	p.park(parkCond, 0, 0)
	c.L.Lock(p)
}

// Signal wakes the earliest waiter, if any. The caller (p) need not hold c.L,
// but typically does.
func (c *Cond) Signal(p *Proc) {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	p.s.wake(w)
}

// Broadcast wakes all current waiters.
func (c *Cond) Broadcast(p *Proc) {
	for _, w := range c.waiters {
		p.s.wake(w)
	}
	c.waiters = c.waiters[:0]
}

// BroadcastFromEvent wakes all waiters from scheduler (event-callback)
// context, e.g. a network-arrival event completing a receive.
func (c *Cond) BroadcastFromEvent(s *Scheduler) {
	for _, w := range c.waiters {
		s.wake(w)
	}
	c.waiters = c.waiters[:0]
}

// WaitGroup mirrors sync.WaitGroup for procs.
type WaitGroup struct {
	n       int
	waiters []*Proc
}

// Add adds delta to the counter. Panics if the counter goes negative.
func (wg *WaitGroup) Add(s *Scheduler, delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		for _, w := range wg.waiters {
			s.wake(w)
		}
		wg.waiters = wg.waiters[:0]
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done(s *Scheduler) { wg.Add(s, -1) }

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.waiters = append(wg.waiters, p)
		p.park(parkWaitGroup, 0, 0)
	}
}

// Barrier synchronizes a fixed party of procs: each Await blocks until all
// parties have arrived, then every party resumes. The barrier is reusable
// (generation-counted).
type Barrier struct {
	parties int
	arrived int
	gen     int
	waiters []*Proc
}

// NewBarrier returns a barrier for the given number of parties (>0).
func NewBarrier(parties int) *Barrier {
	if parties <= 0 {
		panic("sim: barrier parties must be positive")
	}
	return &Barrier{parties: parties}
}

// Await blocks p until all parties have called Await for this generation.
func (b *Barrier) Await(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			p.s.wake(w)
		}
		b.waiters = b.waiters[:0]
		return
	}
	gen := b.gen
	b.waiters = append(b.waiters, p)
	for gen == b.gen {
		p.park(parkBarrier, int64(gen), 0)
	}
}

// Completion is a one-shot latch: procs can wait for it, and a single Fire
// (from proc or event context) releases all current and future waiters.
type Completion struct {
	done    bool
	waiters []*Proc
}

// Done reports whether the completion has fired.
func (c *Completion) Done() bool { return c.done }

// Fire marks the completion done and wakes all waiters. Firing twice panics:
// it would indicate a double-completion bug in the caller.
func (c *Completion) Fire(s *Scheduler) {
	if c.done {
		panic("sim: Completion fired twice")
	}
	c.done = true
	for _, w := range c.waiters {
		s.wake(w)
	}
	c.waiters = nil
}

// Wait blocks p until the completion fires. Returns immediately if already
// fired.
func (c *Completion) Wait(p *Proc) {
	for !c.done {
		c.waiters = append(c.waiters, p)
		p.park(parkCompletion, 0, 0)
	}
}
