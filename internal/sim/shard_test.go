package sim

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestShardGroupSingleIsPlainScheduler: a one-shard group is the sequential
// kernel — no group attached, direct Run allowed, RunPaced supported.
func TestShardGroupSingleIsPlainScheduler(t *testing.T) {
	g := NewShardGroup(1, 0)
	s := g.Shard(0)
	if s.Group() != nil {
		t.Fatalf("single-shard group attached itself to the scheduler")
	}
	var ran bool
	s.Spawn("p", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		ran = true
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || s.Now() != Time(5*Microsecond) {
		t.Fatalf("ran=%v now=%v", ran, s.Now())
	}

	g2 := NewShardGroup(1, 0)
	g2.Shard(0).Spawn("p", func(p *Proc) { p.Sleep(Microsecond) })
	if err := g2.RunPaced(1e12); err != nil {
		t.Fatalf("single-shard RunPaced: %v", err)
	}
}

// TestShardGroupTokenRing passes a token around shards with Defer; the final
// virtual time is exactly hops*lookahead, proving cross-shard events land at
// their timestamps.
func TestShardGroupTokenRing(t *testing.T) {
	const shards = 4
	const rounds = 8
	la := 900 * Nanosecond
	g := NewShardGroup(shards, la)

	hops := 0
	var hop func(i int)
	hop = func(i int) {
		hops++
		if hops >= shards*rounds {
			return
		}
		next := (i + 1) % shards
		s := g.Shard(i)
		s.Defer(g.Shard(next), s.Now().Add(la), func() { hop(next) })
	}
	g.Shard(0).At(0, func() { hop(0) })
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if hops != shards*rounds {
		t.Fatalf("hops = %d, want %d", hops, shards*rounds)
	}
	want := Time(Duration(shards*rounds-1) * la)
	if g.Now() != want {
		t.Fatalf("final time %v, want %v", g.Now(), want)
	}
}

// TestShardGroupCompletionAcrossWindows: the canonical cross-shard pattern —
// a proc on shard B parks on a Completion owned by B, fired by a deferred
// event from shard A.
func TestShardGroupCompletionAcrossWindows(t *testing.T) {
	la := Microsecond
	g := NewShardGroup(2, la)
	a, b := g.Shard(0), g.Shard(1)

	var done Completion
	var wokeAt Time
	b.Spawn("waiter", func(p *Proc) {
		done.Wait(p)
		wokeAt = p.Now()
	})
	a.Spawn("sender", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		at := p.Now().Add(la)
		p.Scheduler().Defer(b, at, func() { done.Fire(b) })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != Time(4*Microsecond) {
		t.Fatalf("waiter woke at %v, want 4us", wokeAt)
	}
}

// TestShardGroupDeterministic runs the same two-shard workload twice and
// requires identical event traces regardless of OS scheduling.
func TestShardGroupDeterministic(t *testing.T) {
	run := func() []string {
		la := 500 * Nanosecond
		g := NewShardGroup(2, la)
		// One log per shard: events append to their own shard's log (shared
		// state across shards would itself be a race).
		logs := make([][]string, 2)
		for i := 0; i < 2; i++ {
			i := i
			s := g.Shard(i)
			s.Spawn(fmt.Sprintf("gen%d", i), func(p *Proc) {
				// A deterministic but irregular schedule of cross- and
				// same-shard events.
				seed := uint64(i + 1)
				for k := 0; k < 50; k++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					d := Duration(seed%1700) * Nanosecond
					p.Sleep(d)
					at := p.Now().Add(la + Duration(seed%300))
					dstID := int(seed>>32) % 2
					k := k
					p.Scheduler().Defer(g.Shard(dstID), at, func() {
						logs[dstID] = append(logs[dstID], fmt.Sprintf("%d:%d@%d->%d", i, k, at, dstID))
					})
				}
			})
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		log := append(append([]string(nil), logs[0]...), logs[1]...)
		sort.Strings(log)
		return log
	}
	first := run()
	for rep := 0; rep < 3; rep++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged from first run", rep+1)
		}
	}
}

// TestShardGroupDeadlockAggregates: parked procs on several shards surface
// in one DeadlockError.
func TestShardGroupDeadlockAggregates(t *testing.T) {
	g := NewShardGroup(2, Microsecond)
	var c0, c1 Completion
	g.Shard(0).Spawn("a", func(p *Proc) { c0.Wait(p) })
	g.Shard(1).Spawn("b", func(p *Proc) { c1.Wait(p) })
	err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked = %v, want both procs", de.Blocked)
	}
	joined := strings.Join(de.Blocked, ";")
	if !strings.Contains(joined, "a(#") || !strings.Contains(joined, "b(#") {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

// TestShardGroupContract pins the drive re-entrancy contract for sharded
// runs: direct drives of a member panic, Run is once-only, and multi-shard
// RunPaced is rejected with a clear error.
func TestShardGroupContract(t *testing.T) {
	mustPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if !strings.Contains(fmt.Sprint(r), want) {
				t.Fatalf("%s: panic %q, want substring %q", name, r, want)
			}
		}()
		fn()
	}

	g := NewShardGroup(2, Microsecond)
	mustPanic("member Run", "drive it with ShardGroup.Run", func() { _ = g.Shard(0).Run() })
	mustPanic("member RunUntil", "drive it with ShardGroup.Run", func() { g.Shard(1).RunUntil(10) })
	mustPanic("member RunPaced", "drive it with ShardGroup.Run", func() { _ = g.Shard(0).RunPaced(1) })

	if err := g.RunPaced(1); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("multi-shard RunPaced error = %v", err)
	}

	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	mustPanic("Run twice", "called twice", func() { _ = g.Run() })

	mustPanic("zero shards", "must be positive", func() { NewShardGroup(0, Microsecond) })
	mustPanic("no lookahead", "positive lookahead", func() { NewShardGroup(2, 0) })

	// Re-entering a drive from inside a window keeps the existing panic; the
	// group re-raises window panics on the coordinator goroutine.
	g2 := NewShardGroup(2, Microsecond)
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "re-entered") {
				t.Fatalf("window re-entry panic = %v", r)
			}
		}()
		g2.Shard(0).At(0, func() { _ = g2.Shard(0).Run() })
		_ = g2.Run()
	}()
}

// TestDeferContract pins Defer's safety checks: local Defer is At, foreign
// schedulers are rejected, and lookahead violations panic.
func TestDeferContract(t *testing.T) {
	g := NewShardGroup(2, Microsecond)
	a, b := g.Shard(0), g.Shard(1)

	ran := false
	a.Defer(a, 0, func() { ran = true }) // local: plain At

	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "violates lookahead") {
				t.Fatalf("lookahead panic = %v", r)
			}
		}()
		a.Defer(b, Time(500*Nanosecond), func() {})
	}()

	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "not a shard of the same group") {
				t.Fatalf("foreign panic = %v", r)
			}
		}()
		a.Defer(New(), Time(Microsecond), func() {})
	}()

	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("local Defer did not run")
	}
}

// TestShardGroupWavefrontHorizon: when one shard is far behind, the ahead
// shard still gets a window bounded by the behind shard's horizon — and the
// behind shard can still affect it. Checks the horizon math is per-shard,
// not a single global window.
func TestShardGroupWavefrontHorizon(t *testing.T) {
	la := Microsecond
	g := NewShardGroup(2, la)
	a, b := g.Shard(0), g.Shard(1)

	// Shard B has dense local work far in the future; shard A sends it a
	// message that must interleave correctly.
	var order []string
	b.At(Time(10*Microsecond), func() { order = append(order, "b-local") })
	a.At(0, func() {
		a.Defer(b, Time(5*Microsecond), func() { order = append(order, "from-a") })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"from-a", "b-local"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}
