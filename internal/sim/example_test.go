package sim_test

import (
	"fmt"

	"partmb/internal/sim"
)

// Example shows the kernel's cooperative actors: two procs synchronizing
// through a barrier in virtual time. The run is deterministic.
func Example() {
	s := sim.New()
	b := sim.NewBarrier(2)
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn(fmt.Sprintf("worker%d", i), func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Millisecond) // skewed compute
			b.Await(p)
			fmt.Printf("worker%d released at t=%v\n", i, sim.Duration(p.Now()))
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	// The last arriver (worker1) proceeds immediately; earlier arrivers
	// wake right after, at the same virtual instant.
	// Output:
	// worker1 released at t=2ms
	// worker0 released at t=2ms
}

// ExampleScheduler_Run demonstrates deadlock detection: the kernel reports
// exactly which procs are stuck and why.
func ExampleScheduler_Run() {
	s := sim.New()
	var m sim.Mutex
	s.Spawn("holder", func(p *sim.Proc) {
		m.Lock(p)
		var never sim.Completion
		never.Wait(p) // blocks forever while holding the lock
	})
	s.Spawn("waiter", func(p *sim.Proc) {
		m.Lock(p)
	})
	err := s.Run()
	_, isDeadlock := err.(*sim.DeadlockError)
	fmt.Println("deadlock detected:", isDeadlock)
	// Output: deadlock detected: true
}
