package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Lazy park reasons: deadlock diagnostics must be byte-identical to the
// strings the kernel built eagerly before the allocation-free rewrite.
// ---------------------------------------------------------------------------

func TestDeadlockMessagesByteIdentical(t *testing.T) {
	s := New()
	var m Mutex
	c := NewCond(&m)
	var wg WaitGroup
	wg.Add(s, 1)
	b := NewBarrier(2)
	var done Completion
	s.Spawn("mutex-holder", func(p *Proc) {
		m.Lock(p)
		done.Wait(p)
	})
	s.Spawn("mutex-waiter", func(p *Proc) { m.Lock(p) })
	s.Spawn("cond-waiter", func(p *Proc) {
		m2 := &Mutex{}
		c2 := NewCond(m2)
		m2.Lock(p)
		c2.Wait(p)
	})
	s.Spawn("wg-waiter", func(p *Proc) { wg.Wait(p) })
	s.Spawn("barrier-waiter", func(p *Proc) { b.Await(p) })
	_ = c
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want DeadlockError", err)
	}
	want := []string{
		"barrier-waiter(#5): barrier gen 0",
		"cond-waiter(#3): cond wait",
		"mutex-holder(#1): completion wait",
		"mutex-waiter(#2): mutex wait",
		"wg-waiter(#4): waitgroup wait",
	}
	if len(de.Blocked) != len(want) {
		t.Fatalf("blocked = %v, want %v", de.Blocked, want)
	}
	for i := range want {
		if de.Blocked[i] != want[i] {
			t.Errorf("blocked[%d] = %q, want %q", i, de.Blocked[i], want[i])
		}
	}
	wantErr := fmt.Sprintf("sim: deadlock at t=%v with %d blocked procs: %s",
		Duration(0), len(want), strings.Join(want, "; "))
	if de.Error() != wantErr {
		t.Errorf("Error() = %q, want %q", de.Error(), wantErr)
	}
}

// A sleeping proc can never appear in a DeadlockError (its wake event keeps
// the queue non-empty), so the sleep reason is locked down directly.
func TestSleepParkReasonFormat(t *testing.T) {
	p := &Proc{parkKind: parkSleep, parkA: int64(5 * Millisecond), parkB: int64(Time(0).Add(5 * Millisecond))}
	want := fmt.Sprintf("sleep %v until %v", 5*Millisecond, Time(0).Add(5*Millisecond))
	if got := p.parkReason(); got != want {
		t.Fatalf("sleep reason = %q, want %q", got, want)
	}
	if want != "sleep 5ms until 5000000" {
		t.Fatalf("format drifted: %q", want)
	}
}

// ---------------------------------------------------------------------------
// Allocation-free fast path: driving a sleep/wake loop must not allocate
// per event (the freelist recycles events; wakes carry no closures; park
// reasons are codes, not strings).
// ---------------------------------------------------------------------------

func TestSleepWakeAllocationFree(t *testing.T) {
	const iters = 5000
	s := New()
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < iters; i++ {
			p.Sleep(Microsecond)
		}
	})
	// Warm the channel machinery and the freelist with the first few events
	// via a bounded drive, then measure the steady state.
	s.RunUntil(Time(10 * Microsecond))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	// ~0.04 allocs per sleep of slack for runtime-internal noise; the old
	// kernel spent 7 allocs per sleep here.
	if allocs > iters/25 {
		t.Errorf("driving %d sleeps allocated %d objects, want ~0", iters, allocs)
	}
}

// Direct handoff between two procs must produce the same timeline as the
// scheduler-mediated slow path (RunPaced at enormous scale disables it).
func TestDirectHandoffMatchesSlowPath(t *testing.T) {
	build := func() (*Scheduler, *[]string) {
		s := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				for i := 0; i < 50; i++ {
					p.Sleep(Duration(1 + i%3))
					log = append(log, fmt.Sprintf("%s@%d", name, p.Now()))
				}
			})
		}
		return s, &log
	}
	fast, fastLog := build()
	if err := fast.Run(); err != nil {
		t.Fatal(err)
	}
	slow, slowLog := build()
	if err := slow.RunPaced(1e12); err != nil {
		t.Fatal(err)
	}
	if len(*fastLog) != len(*slowLog) {
		t.Fatalf("log lengths differ: %d vs %d", len(*fastLog), len(*slowLog))
	}
	for i := range *fastLog {
		if (*fastLog)[i] != (*slowLog)[i] {
			t.Fatalf("timelines diverge at %d: %q vs %q", i, (*fastLog)[i], (*slowLog)[i])
		}
	}
	if fast.Now() != slow.Now() {
		t.Fatalf("final clocks differ: %v vs %v", fast.Now(), slow.Now())
	}
}

// ---------------------------------------------------------------------------
// The drive re-entrancy contract (Run / RunPaced / RunUntil).
// ---------------------------------------------------------------------------

func TestRunAfterPartialRunUntilFinishes(t *testing.T) {
	s := New()
	var ticks []Time
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 6; i++ {
			p.Sleep(Millisecond)
			ticks = append(ticks, p.Now())
		}
	})
	if s.RunUntil(Time(2 * Millisecond)) {
		t.Fatal("RunUntil(2ms) drained early")
	}
	if len(ticks) != 2 {
		t.Fatalf("ticks after partial drive = %d, want 2", len(ticks))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 6 || s.Now() != Time(6*Millisecond) {
		t.Fatalf("after Run: %d ticks, now %v; want 6 ticks at 6ms", len(ticks), Duration(s.Now()))
	}
}

func TestRunUntilIncrementalDrives(t *testing.T) {
	s := New()
	var ticks int
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(Millisecond)
			ticks++
		}
	})
	for i := 1; i <= 4; i++ {
		drained := s.RunUntil(Time(i) * Time(Millisecond))
		if ticks != i {
			t.Fatalf("after RunUntil(%dms): %d ticks", i, ticks)
		}
		if drained != (i == 4) {
			t.Fatalf("RunUntil(%dms) drained = %v", i, drained)
		}
	}
}

func TestDriveAfterDrainPanics(t *testing.T) {
	cases := []struct {
		name  string
		drive func(s *Scheduler)
	}{
		{"Run", func(s *Scheduler) { s.Run() }},
		{"RunPaced", func(s *Scheduler) { s.RunPaced(1e12) }},
		{"RunUntil", func(s *Scheduler) { s.RunUntil(Time(Second)) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := New()
			s.Spawn("p", func(p *Proc) { p.Sleep(Microsecond) })
			if !s.RunUntil(Time(Second)) {
				t.Fatal("queue did not drain")
			}
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after drained drive did not panic", c.name)
				}
			}()
			c.drive(s)
		})
	}
}

func TestDriveReentryFromEventPanics(t *testing.T) {
	cases := []struct {
		name  string
		drive func(s *Scheduler)
	}{
		{"Run", func(s *Scheduler) { s.Run() }},
		{"RunUntil", func(s *Scheduler) { s.RunUntil(Time(Second)) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := New()
			var reentryPanic interface{}
			s.At(0, func() {
				defer func() { reentryPanic = recover() }()
				c.drive(s)
			})
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if reentryPanic == nil {
				t.Fatalf("%s from within an event callback did not panic", c.name)
			}
		})
	}
}

// The run loop's monotonicity guard is defense-in-depth behind At's own
// check; RunUntil historically lacked it. Forge a past event to prove all
// drive loops now refuse to move the clock backwards.
func TestRunUntilMonotonicityGuard(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Proc) { p.Sleep(Millisecond) })
	if s.RunUntil(Time(Millisecond)) != true {
		t.Fatal("expected drained drive")
	}
	s.running = false // re-arm the drive for the forged event
	s.queue.push(s.newEvent(0, func() {}, nil))
	s.queue[0].at = 0 // bypass At's scheduling-time check
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil fired an event in the past without panicking")
		}
	}()
	s.RunUntil(Time(2 * Millisecond))
}

// ---------------------------------------------------------------------------
// RunPaced through the wall-clock seams: pacing must be deterministic and
// testable without real sleeping.
// ---------------------------------------------------------------------------

func TestRunPacedDeterministicPacing(t *testing.T) {
	origNow, origSleep := timeNowUnixNano, timeSleep
	defer func() { timeNowUnixNano, timeSleep = origNow, origSleep }()

	var wall int64 // fake wall clock, ns
	var slept []time.Duration
	timeNowUnixNano = func() int64 { return wall }
	timeSleep = func(d time.Duration) {
		slept = append(slept, d)
		wall += int64(d)
	}

	s := New()
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(10 * Millisecond)
		}
	})
	if err := s.RunPaced(2); err != nil { // 40ms virtual at 2x => 20ms wall
		t.Fatal(err)
	}
	var total time.Duration
	for _, d := range slept {
		if d <= 0 {
			t.Fatalf("non-positive pacing sleep %v", d)
		}
		total += d
	}
	if total != 20*time.Millisecond {
		t.Fatalf("total paced sleep = %v, want exactly 20ms on a fake clock", total)
	}
	if wall != int64(20*time.Millisecond) {
		t.Fatalf("fake wall clock = %dns, want 20ms", wall)
	}
}

// ---------------------------------------------------------------------------
// Event queue: the typed 4-ary heap must dequeue in (time, seq) order and
// the freelist must actually recycle.
// ---------------------------------------------------------------------------

func TestEventQueueOrdering(t *testing.T) {
	s := New()
	times := []Time{7, 3, 3, 9, 1, 5, 3, 8, 2, 6, 4, 1, 9, 0, 5}
	var fired []Time
	order := map[Time][]int{}
	for i, at := range times {
		i := i
		at := at
		order[at] = append(order[at], i)
		s.At(at, func() {
			fired = append(fired, at)
			got := order[at][0]
			order[at] = order[at][1:]
			if got != i {
				t.Errorf("same-time events fired out of scheduling order: got %d, want %d", i, got)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of time order: %v", fired)
		}
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestEventFreelistRecycles(t *testing.T) {
	s := New()
	for i := 0; i < 8; i++ {
		s.At(Time(i), func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.free) == 0 {
		t.Fatal("freelist empty after a drive; events are not recycled")
	}
	free := len(s.free)
	s.running = false
	s.At(s.now, func() {})
	if len(s.free) != free-1 {
		t.Fatalf("scheduling did not reuse a freelist event: %d -> %d", free, len(s.free))
	}
}
