package sim

import (
	"fmt"
	"testing"
)

// benchCrossTraffic drives a cross-traffic-heavy shard group to completion:
// every shard hosts one proc that each round defers `fanout` events onto the
// next shard and sleeps one lookahead, so every window ends with
// shards*fanout cross-shard events at the barrier. With trivial event
// bodies the run time is dominated by the window machinery — dispatch,
// outbox sort, and the barrier merge — which is what this benchmark pins.
func benchCrossTraffic(b *testing.B, shards, fanout, rounds int) {
	const la = Duration(1000)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		g := NewShardGroup(shards, la)
		for i := 0; i < shards; i++ {
			s := g.Shard(i)
			dst := g.Shard((i + 1) % shards)
			s.Spawn("spray", func(p *Proc) {
				for r := 0; r < rounds; r++ {
					t := p.Now().Add(la)
					for k := 0; k < fanout; k++ {
						s.Defer(dst, t, func() {})
					}
					p.Sleep(la)
				}
			})
		}
		if err := g.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardBarrierMerge is the satellite micro-benchmark for the
// window-barrier merge: 8 shards x 64 cross events per shard per window,
// 50 windows. Before the k-way merge this cost one reflection-based
// sort.Slice over the 512-event concatenation per window; after it, each
// worker sorts its own 64-event run in parallel and the coordinator merges
// the sorted runs.
func BenchmarkShardBarrierMerge(b *testing.B) {
	for _, c := range []struct{ shards, fanout int }{
		{2, 64},
		{8, 64},
		{8, 512},
	} {
		b.Run(fmt.Sprintf("shards%d/fanout%d", c.shards, c.fanout), func(b *testing.B) {
			benchCrossTraffic(b, c.shards, c.fanout, 50)
		})
	}
}
