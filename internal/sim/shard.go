package sim

import (
	"fmt"
	"sort"
	"sync"
)

// This file adds the conservative parallel layer over the sequential kernel:
// a ShardGroup partitions the simulation into independent Schedulers (one
// per shard) that run real OS-parallel windows of virtual time, synchronized
// by a lookahead barrier (a window-based conservative protocol in the YAWNS
// family).
//
// The protocol invariant is the classic one: if every cross-shard
// interaction carries at least `lookahead` of virtual latency, then every
// shard may safely process all events strictly before
//
//	min over all shards of (next event time) + lookahead
//
// because any event processed in that window happens at or after the global
// minimum, so any cross-shard effect it produces lands at or after
// min + lookahead — strictly outside the window. The bound must be global,
// not per-shard: a shard whose queue is momentarily empty (all its procs
// parked on completions) is NOT at an infinite horizon, because the barrier
// can deliver events that wake it and make it reply only one lookahead
// later. Each round the group computes the window, runs every shard with
// work inside it in parallel, barriers, and exchanges the cross-shard
// events the window produced (in deterministic (time, source shard, issue
// order) order), so results are independent of OS thread scheduling.
//
// A group of one shard is special-cased to be the sequential kernel,
// literally: the shard is a plain Scheduler with no group attached, Run
// delegates to Scheduler.Run, and every event takes the exact code path a
// standalone scheduler would take. Single-shard runs are therefore
// byte-identical to the pre-shard kernel and serve as the deterministic
// reference for multi-shard runs.

// crossEvent is an event produced on one shard for another, buffered until
// the window barrier.
type crossEvent struct {
	dst  *Scheduler
	at   Time
	born Time   // sender-side creation time, the first same-time tiebreak
	src  int    // source shard id, part of the deterministic merge order
	seq  uint64 // per-source issue order, the rest of the merge order
	fn   func()
}

// ShardGroup owns a set of shard Schedulers and drives them with the
// conservative window protocol.
type ShardGroup struct {
	shards    []*Scheduler
	lookahead Duration
	running   bool

	// next[i] caches shard i's head-of-queue time each round.
	next []Time
	// pending is the merge buffer for cross-shard events at the barrier.
	pending []crossEvent
}

// NewShardGroup creates n shard schedulers. For n > 1 the lookahead must be
// positive: it is the minimum virtual latency of any cross-shard
// interaction, and the window width of the conservative protocol. A group
// of one shard is exactly the sequential kernel (the shard may even be
// driven directly via Scheduler.Run).
func NewShardGroup(n int, lookahead Duration) *ShardGroup {
	if n <= 0 {
		panic(fmt.Sprintf("sim: shard count %d must be positive", n))
	}
	if n > 1 && lookahead <= 0 {
		panic("sim: a multi-shard group requires a positive lookahead")
	}
	g := &ShardGroup{lookahead: lookahead, next: make([]Time, n)}
	g.shards = make([]*Scheduler, n)
	for i := range g.shards {
		s := New()
		s.shardID = i
		if n > 1 {
			// A single-shard group leaves group nil so the shard is an
			// ordinary scheduler (identical code paths, direct Run allowed).
			s.group = g
		}
		g.shards[i] = s
	}
	return g
}

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's scheduler. Spawn procs on the shard that owns
// their state; procs on different shards must not share sync primitives
// (Mutex, Barrier, Completion, ...) — cross-shard interaction must go
// through Scheduler.Defer.
func (g *ShardGroup) Shard(i int) *Scheduler { return g.shards[i] }

// Lookahead returns the group's lookahead window.
func (g *ShardGroup) Lookahead() Duration { return g.lookahead }

// Now returns the maximum virtual time reached by any shard.
func (g *ShardGroup) Now() Time {
	var now Time
	for _, s := range g.shards {
		if s.now > now {
			now = s.now
		}
	}
	return now
}

// Run drives all shards to completion and returns nil if every proc
// finished, or a *DeadlockError aggregating all shards' parked procs.
// Like Scheduler.Run it may be called exactly once.
func (g *ShardGroup) Run() error {
	if len(g.shards) == 1 {
		return g.shards[0].Run()
	}
	if g.running {
		panic("sim: ShardGroup.Run called twice")
	}
	g.running = true
	var wg sync.WaitGroup
	// panics[i] captures a panic escaping shard i's window so it can be
	// re-raised on the coordinator goroutine (lowest shard first, for
	// determinism) instead of killing the process from a worker goroutine.
	panics := make([]any, len(g.shards))
	for {
		work := false
		min := maxTime
		for i, s := range g.shards {
			if len(s.queue) > 0 {
				g.next[i] = s.queue[0].at
				work = true
				if g.next[i] < min {
					min = g.next[i]
				}
			} else {
				g.next[i] = maxTime
			}
		}
		if !work {
			break
		}
		// Events strictly before min+lookahead are safe for every shard
		// (anything processed in the window is at >= min, so its cross-shard
		// effects land at >= min+lookahead); the inclusive drive limit is one
		// nanosecond less.
		limit := maxTime
		if min < maxTime-Time(g.lookahead) {
			limit = min + Time(g.lookahead) - 1
		}
		for i, s := range g.shards {
			if g.next[i] > limit {
				continue
			}
			wg.Add(1)
			go func(i int, s *Scheduler, limit Time) {
				defer wg.Done()
				defer func() { panics[i] = recover() }()
				s.runWindow(limit)
			}(i, s, limit)
		}
		wg.Wait()
		for _, r := range panics {
			if r != nil {
				panic(r)
			}
		}
		g.deliver()
	}
	return g.finish()
}

// deliver moves the windows' cross-shard events into their destination
// queues in deterministic order. It runs at the barrier, while every shard
// is quiescent.
func (g *ShardGroup) deliver() {
	g.pending = g.pending[:0]
	for _, s := range g.shards {
		g.pending = append(g.pending, s.outbox...)
		for i := range s.outbox {
			s.outbox[i] = crossEvent{}
		}
		s.outbox = s.outbox[:0]
	}
	sort.Slice(g.pending, func(i, j int) bool {
		a, b := g.pending[i], g.pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.born != b.born {
			return a.born < b.born
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, e := range g.pending {
		// atBorn keeps the sender-side creation time as the same-time
		// tiebreak, so the event interleaves with the destination's local
		// events exactly as it would have on a single scheduler.
		e.dst.atBorn(e.at, e.born, e.fn)
	}
}

// finish marks all shards terminally run and aggregates their deadlock
// state into one error.
func (g *ShardGroup) finish() error {
	live := 0
	var now Time
	var blocked []string
	for _, s := range g.shards {
		s.running = true
		if s.now > now {
			now = s.now
		}
		live += s.live
		if err := s.deadlock(); err != nil {
			blocked = append(blocked, err.(*DeadlockError).Blocked...)
		}
	}
	if live == 0 {
		return nil
	}
	sort.Strings(blocked)
	return &DeadlockError{Now: now, Blocked: blocked}
}

// RunPaced paces a single-shard group against the wall clock, exactly like
// Scheduler.RunPaced. Pacing fundamentally requires observing every event
// from one sequential drive loop, so multi-shard groups reject it with a
// clear error rather than silently serializing.
func (g *ShardGroup) RunPaced(scale float64) error {
	if len(g.shards) == 1 {
		return g.shards[0].RunPaced(scale)
	}
	return fmt.Errorf("sim: RunPaced is not supported with %d shards: pacing requires the sequential single-loop drive; use Run, or a single shard", len(g.shards))
}

// runWindow drives one shard through one conservative window: all queued
// events at or before limit. Unlike the public drives it never marks the
// scheduler terminally run — the queue legitimately drains between windows.
func (s *Scheduler) runWindow(limit Time) {
	s.windowing = true
	s.startDrive(limit, true)
	for len(s.queue) > 0 && s.queue[0].at <= limit {
		s.dispatch(s.queue.pop())
	}
	s.endDrive(false)
	s.windowing = false
}

// Defer schedules fn at absolute time t on dst. On the local scheduler it
// is exactly At. Across shards of the same group it becomes a buffered
// cross-shard event, delivered at the next window barrier; t must respect
// the group's lookahead (t >= now + lookahead), which models the minimum
// cross-shard link latency and is what makes the conservative windows safe.
func (s *Scheduler) Defer(dst *Scheduler, t Time, fn func()) {
	if dst == s {
		s.At(t, fn)
		return
	}
	if s.group == nil || dst.group != s.group {
		panic("sim: Defer target is not a shard of the same group")
	}
	if t < s.now.Add(s.group.lookahead) {
		panic(fmt.Sprintf("sim: cross-shard event at %v violates lookahead %v (now %v)",
			t, s.group.lookahead, s.now))
	}
	s.outSeq++
	s.outbox = append(s.outbox, crossEvent{dst: dst, at: t, born: s.now, src: s.shardID, seq: s.outSeq, fn: fn})
}

// Group returns the shard group this scheduler belongs to, or nil for a
// standalone scheduler (including the single shard of a one-shard group).
func (s *Scheduler) Group() *ShardGroup { return s.group }

// ShardID returns the scheduler's shard index within its group (0 for a
// standalone scheduler).
func (s *Scheduler) ShardID() int { return s.shardID }
