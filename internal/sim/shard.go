package sim

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// This file adds the conservative parallel layer over the sequential kernel:
// a ShardGroup partitions the simulation into independent Schedulers (one
// per shard) that run real OS-parallel windows of virtual time, synchronized
// by a lookahead barrier (a window-based conservative protocol in the YAWNS
// family).
//
// The protocol invariant is the classic one: if every cross-shard
// interaction carries at least `lookahead` of virtual latency, then every
// shard may safely process all events strictly before
//
//	min over all shards of (next event time) + lookahead
//
// because any event processed in that window happens at or after the global
// minimum, so any cross-shard effect it produces lands at or after
// min + lookahead — strictly outside the window. The bound must be global,
// not per-shard: a shard whose queue is momentarily empty (all its procs
// parked on completions) is NOT at an infinite horizon, because the barrier
// can deliver events that wake it and make it reply only one lookahead
// later.
//
// Execution decouples logical shards from OS parallelism: Run starts a
// persistent pool of min(GOMAXPROCS, shards) window workers once, and each
// round dispatches the shards with work in the window to the pool, ordered
// largest-predicted-first (LPT, from an EWMA of each shard's recent window
// host cost), with idle workers stealing the remaining shards off a shared
// cursor. Over-decomposition (more shards than cores) thereby becomes the
// load-balancing mechanism: a hot shard no longer serializes the window,
// because the other workers drain the rest of the queue around it.
//
// Determinism is by construction, not by scheduling: shards touch only
// their own state inside a window, cross-shard events are buffered in
// per-shard outboxes, and the barrier delivers them in the total order
// (at, born, src, seq) — a pure sort, independent of which worker ran which
// shard, in what order, or how fast. Any shard-to-worker assignment
// (stealing on or off, any worker count) therefore yields byte-identical
// results; the dispatch order and the cost model can only change wall-clock
// time. The contract is pinned by the determinism tests in shard_test.go.
//
// A group of one shard is special-cased to be the sequential kernel,
// literally: the shard is a plain Scheduler with no group attached, Run
// delegates to Scheduler.Run, and every event takes the exact code path a
// standalone scheduler would take. Single-shard runs are therefore
// byte-identical to the pre-shard kernel and serve as the deterministic
// reference for multi-shard runs.

// crossEvent is an event produced on one shard for another, buffered until
// the window barrier.
type crossEvent struct {
	dst  *Scheduler
	at   Time
	born Time   // sender-side creation time, the first same-time tiebreak
	src  int    // source shard id, part of the deterministic merge order
	seq  uint64 // per-source issue order, the rest of the merge order
	fn   func()
}

// ewmaAlpha is the weight of the latest window in the per-shard host-cost
// EWMA that drives the LPT dispatch order. The model only affects wall
// clock, never results.
const ewmaAlpha = 0.4

// Outbox shrink policy (see tickOutbox): every outboxShrinkEvery windows a
// shard whose outbox capacity exceeds four times its recent peak use (and
// the floor) is reallocated down, so one bursty window does not pin the
// high-water buffer for the rest of the run.
const (
	outboxShrinkEvery = 32
	outboxMinCap      = 64
)

// ShardStats are the group's execution counters, in the style of
// engine.Stats. All of it is host-side telemetry: none of these values
// feed back into the simulation, and deterministic journals exclude them
// (they legitimately differ across shard counts, worker counts, and
// stealing modes).
type ShardStats struct {
	// Shards and Workers are the group's shard count and window-worker
	// pool size; Stealing reports whether work stealing was enabled.
	Shards   int  `json:"shards"`
	Workers  int  `json:"workers"`
	Stealing bool `json:"stealing"`
	// Windows is the number of conservative windows executed.
	Windows int64 `json:"windows"`
	// Events is the total number of events dispatched inside windows.
	Events int64 `json:"events"`
	// Merged counts cross-shard events k-way-merged at barriers;
	// MergeSkips counts windows that ended with zero cross-shard events
	// and skipped the merge entirely.
	Merged     int64 `json:"merged"`
	MergeSkips int64 `json:"merge_skips"`
	// Steals counts shard-windows executed by a worker other than the
	// shard's static owner (its contiguous-chunk worker) — the number of
	// rebalancing moves the LPT + stealing dispatch made.
	Steals int64 `json:"steals"`
	// Shrinks counts outbox buffers reallocated down by the high-water
	// shrink policy.
	Shrinks int64 `json:"shrinks"`
	// PredNS / ActualNS compare the cost model against reality: summed
	// EWMA-predicted vs measured host time of all shard-windows (cold
	// shards predict 0).
	PredNS   int64 `json:"pred_ns"`
	ActualNS int64 `json:"actual_ns"`
	// ImbalanceMean / ImbalanceMax summarize the per-window imbalance
	// ratio: max over active shards of events processed, divided by the
	// mean — 1.0 is perfectly balanced.
	ImbalanceMean float64 `json:"imbalance_mean"`
	ImbalanceMax  float64 `json:"imbalance_max"`
}

// ShardSpan describes one executed shard-window for tracing: which pool
// worker ran which shard in which window, in host time relative to the
// group's Run epoch. Stolen marks spans executed off the shard's static
// owner lane. Spans are emitted by the coordinator between windows, in
// shard order, so observers need no locking.
type ShardSpan struct {
	Window  int64
	Worker  int
	Shard   int
	StartNS int64
	EndNS   int64
	Events  int64
	PredNS  int64
	Stolen  bool
}

// ShardGroup owns a set of shard Schedulers and drives them with the
// conservative window protocol.
type ShardGroup struct {
	shards    []*Scheduler
	lookahead Duration
	running   bool

	// Pool configuration, frozen when Run starts.
	workers  int  // 0 = min(GOMAXPROCS, shards)
	stealing bool // stealing on (default) or static owner assignment
	span     func(ShardSpan)
	// timed enables per-shard-window wall-clock sampling: on for a
	// multi-worker pool (the EWMA drives LPT dispatch) or a span observer;
	// off for a one-worker pool, where dispatch order cannot change wall
	// time and the clock calls would be pure overhead (PredNS/ActualNS
	// then report 0).
	timed bool

	// next[i] caches shard i's head-of-queue time each round; limit is the
	// current window's inclusive drive limit. Both are written by the
	// coordinator before workers are signaled.
	next  []Time
	limit Time

	// Window worker pool. order lists the shards active in the current
	// window, sorted largest-predicted-first; stealing workers claim
	// positions off cursor, static workers run their entries of owned.
	startCh []chan struct{}
	wg      sync.WaitGroup
	order   []int
	cursor  atomic.Int64
	owned   [][]int // owned[w]: shard ids statically owned by worker w
	ownerOf []int   // inverse of owned
	epochNS int64   // wall-clock epoch of Run, for span timestamps

	// Per-shard per-window scratch, written by the executing worker and
	// read by the coordinator after the window barrier.
	panics    []any
	winEvents []int64
	winNS     []int64
	winStart  []int64
	winEnd    []int64
	winPred   []int64
	winWorker []int

	// cost[i] is the EWMA of shard i's window host cost in ns (0 = cold).
	cost []float64

	// Barrier merge scratch: shard ids with non-empty outboxes and the
	// live run tails of the k-way merge.
	heads []int
	runs  [][]crossEvent

	stats        ShardStats
	imbalanceSum float64
}

// NewShardGroup creates n shard schedulers. For n > 1 the lookahead must be
// positive: it is the minimum virtual latency of any cross-shard
// interaction, and the window width of the conservative protocol. A group
// of one shard is exactly the sequential kernel (the shard may even be
// driven directly via Scheduler.Run).
func NewShardGroup(n int, lookahead Duration) *ShardGroup {
	if n <= 0 {
		panic(fmt.Sprintf("sim: shard count %d must be positive", n))
	}
	if n > 1 && lookahead <= 0 {
		panic("sim: a multi-shard group requires a positive lookahead")
	}
	g := &ShardGroup{lookahead: lookahead, next: make([]Time, n), stealing: true}
	g.shards = make([]*Scheduler, n)
	for i := range g.shards {
		s := New()
		s.shardID = i
		if n > 1 {
			// A single-shard group leaves group nil so the shard is an
			// ordinary scheduler (identical code paths, direct Run allowed).
			s.group = g
		}
		g.shards[i] = s
	}
	return g
}

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's scheduler. Spawn procs on the shard that owns
// their state; procs on different shards must not share sync primitives
// (Mutex, Barrier, Completion, ...) — cross-shard interaction must go
// through Scheduler.Defer.
func (g *ShardGroup) Shard(i int) *Scheduler { return g.shards[i] }

// Lookahead returns the group's lookahead window.
func (g *ShardGroup) Lookahead() Duration { return g.lookahead }

// Now returns the maximum virtual time reached by any shard.
func (g *ShardGroup) Now() Time {
	var now Time
	for _, s := range g.shards {
		if s.now > now {
			now = s.now
		}
	}
	return now
}

// SetWorkers overrides the window-worker pool size (normally
// min(GOMAXPROCS, shards)); n is clamped to [1, shards]. It must be called
// before Run. Worker count never affects results, only wall-clock time —
// the determinism tests drive the same workload at several pool sizes.
func (g *ShardGroup) SetWorkers(n int) {
	if g.running {
		panic("sim: ShardGroup.SetWorkers after Run")
	}
	if n < 1 {
		n = 1
	}
	if n > len(g.shards) {
		n = len(g.shards)
	}
	g.workers = n
}

// SetStealing enables (default) or disables work stealing. With stealing
// off, every shard is pinned to its static owner worker (contiguous chunks
// of the shard list), which is the un-balanced baseline the benchgate
// imbalance gate compares against. Must be called before Run; never
// affects results.
func (g *ShardGroup) SetStealing(on bool) {
	if g.running {
		panic("sim: ShardGroup.SetStealing after Run")
	}
	g.stealing = on
}

// SetSpanObserver installs fn to receive one ShardSpan per executed
// shard-window, called from the coordinator between windows (no locking
// needed). Must be set before Run; nil disables. The observer cost is off
// the workers' critical path but still host time — leave it nil outside
// tracing runs.
func (g *ShardGroup) SetSpanObserver(fn func(ShardSpan)) {
	if g.running {
		panic("sim: ShardGroup.SetSpanObserver after Run")
	}
	g.span = fn
}

// Stats returns the group's execution counters. Call it after Run; a
// single-shard group (the sequential kernel) reports a zero value with
// Shards == 1.
func (g *ShardGroup) Stats() ShardStats {
	st := g.stats
	st.Shards = len(g.shards)
	if st.Windows > 0 {
		st.ImbalanceMean = g.imbalanceSum / float64(st.Windows)
	}
	return st
}

// poolSize resolves the effective worker count.
func (g *ShardGroup) poolSize() int {
	w := g.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(g.shards) {
		w = len(g.shards)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run drives all shards to completion and returns nil if every proc
// finished, or a *DeadlockError aggregating all shards' parked procs.
// Like Scheduler.Run it may be called exactly once.
func (g *ShardGroup) Run() error {
	if len(g.shards) == 1 {
		return g.shards[0].Run()
	}
	if g.running {
		panic("sim: ShardGroup.Run called twice")
	}
	g.running = true

	n := len(g.shards)
	W := g.poolSize()
	g.stats.Workers = W
	g.stats.Stealing = g.stealing
	g.timed = W > 1 || g.span != nil
	g.epochNS = timeNowUnixNano()
	g.panics = make([]any, n)
	g.winEvents = make([]int64, n)
	g.winNS = make([]int64, n)
	g.winStart = make([]int64, n)
	g.winEnd = make([]int64, n)
	g.winPred = make([]int64, n)
	g.winWorker = make([]int, n)
	g.cost = make([]float64, n)
	g.order = make([]int, 0, n)

	// Static ownership: worker w owns the contiguous chunk of shards with
	// sid*W/n == w. It is the stealing-off assignment and the reference
	// against which steals are counted.
	g.ownerOf = make([]int, n)
	g.owned = make([][]int, W)
	for sid := 0; sid < n; sid++ {
		w := sid * W / n
		g.ownerOf[sid] = w
		g.owned[w] = append(g.owned[w], sid)
	}

	// The persistent worker pool: started once, signaled per window, torn
	// down when Run returns. Zero goroutine spawns per window.
	g.startCh = make([]chan struct{}, W)
	for w := 0; w < W; w++ {
		g.startCh[w] = make(chan struct{}, 1)
		go g.windowWorker(w)
	}
	defer func() {
		for _, ch := range g.startCh {
			close(ch)
		}
	}()

	for {
		work := false
		min := maxTime
		for i, s := range g.shards {
			if len(s.queue) > 0 {
				g.next[i] = s.queue[0].at
				work = true
				if g.next[i] < min {
					min = g.next[i]
				}
			} else {
				g.next[i] = maxTime
			}
		}
		if !work {
			break
		}
		// Events strictly before min+lookahead are safe for every shard
		// (anything processed in the window is at >= min, so its cross-shard
		// effects land at >= min+lookahead); the inclusive drive limit is one
		// nanosecond less.
		limit := maxTime
		if min < maxTime-Time(g.lookahead) {
			limit = min + Time(g.lookahead) - 1
		}
		g.limit = limit
		g.dispatchWindow()
		for i := range g.shards {
			if r := g.panics[i]; r != nil {
				panic(r)
			}
		}
		g.accountWindow()
		g.deliver()
	}
	return g.finish()
}

// dispatchWindow runs every shard with work in the current window on the
// worker pool and waits for the window barrier. A window with a single
// active shard runs inline on the coordinator — no signaling at all.
func (g *ShardGroup) dispatchWindow() {
	g.order = g.order[:0]
	for sid := range g.shards {
		if g.next[sid] <= g.limit {
			g.order = append(g.order, sid)
		}
	}
	g.predict()
	if len(g.order) == 1 {
		g.runShardWindow(g.ownerOf[g.order[0]], g.order[0])
		return
	}
	if len(g.startCh) == 1 {
		// A one-worker pool (GOMAXPROCS=1) degenerates to sequential
		// execution; run the window inline on the coordinator instead of
		// bouncing through the worker's channel.
		for _, sid := range g.order {
			g.runShardWindow(0, sid)
		}
		return
	}
	if g.stealing {
		// LPT: largest predicted cost first, so the expensive shards start
		// immediately and the small ones fill the gaps via the cursor.
		slices.SortFunc(g.order, func(a, b int) int {
			ca, cb := g.cost[a], g.cost[b]
			// Cold shards (no cost observation yet) run first — an unknown
			// cost is scheduled conservatively — ordered by queue length.
			if (ca == 0) != (cb == 0) {
				if ca == 0 {
					return -1
				}
				return 1
			}
			if ca == 0 {
				if la, lb := len(g.shards[a].queue), len(g.shards[b].queue); la != lb {
					return lb - la
				}
				return a - b
			}
			if ca != cb {
				if ca > cb {
					return -1
				}
				return 1
			}
			return a - b
		})
		g.cursor.Store(0)
		nwake := g.poolWake(len(g.order))
		g.wg.Add(nwake)
		for w := 0; w < nwake; w++ {
			g.startCh[w] <- struct{}{}
		}
	} else {
		// Static assignment: wake exactly the owners of active shards.
		for w, shards := range g.owned {
			for _, sid := range shards {
				if g.next[sid] <= g.limit {
					g.wg.Add(1)
					g.startCh[w] <- struct{}{}
					break
				}
			}
		}
	}
	g.wg.Wait()
}

// poolWake caps the number of workers woken at the number of active shards.
func (g *ShardGroup) poolWake(active int) int {
	if active < len(g.startCh) {
		return active
	}
	return len(g.startCh)
}

// windowWorker is the body of one pool worker: woken once per window, it
// claims shards (stealing) or walks its owned shards (static) and runs
// each through the window.
func (g *ShardGroup) windowWorker(w int) {
	for range g.startCh[w] {
		if g.stealing {
			for {
				pos := int(g.cursor.Add(1)) - 1
				if pos >= len(g.order) {
					break
				}
				g.runShardWindow(w, g.order[pos])
			}
		} else {
			for _, sid := range g.owned[w] {
				if g.next[sid] <= g.limit {
					g.runShardWindow(w, sid)
				}
			}
		}
		g.wg.Done()
	}
}

// runShardWindow executes one shard's window on worker w, capturing any
// escaping panic (re-raised on the coordinator, lowest shard first), the
// deterministic event count, and the host-time cost sample. It ends by
// sorting the shard's outbox — the parallel half of the barrier merge.
func (g *ShardGroup) runShardWindow(w, sid int) {
	s := g.shards[sid]
	defer func() {
		if r := recover(); r != nil {
			g.panics[sid] = r
		}
	}()
	var start int64
	if g.timed {
		start = timeNowUnixNano()
	}
	q0, seq0 := len(s.queue), s.seq
	s.runWindow(g.limit)
	// Every event ever created is pushed onto the queue exactly once, and
	// every pop dispatches, so the events processed this window are the
	// starting queue length plus the events created (seq delta) minus what
	// is still queued. Counting here keeps the dispatch hot path (and its
	// handoff fast path) untouched.
	g.winEvents[sid] = int64(q0) + int64(s.seq-seq0) - int64(len(s.queue))
	slices.SortFunc(s.outbox, func(a, b crossEvent) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.born != b.born {
			if a.born < b.born {
				return -1
			}
			return 1
		}
		// seq is unique per source shard and every event in this outbox
		// shares src, so (at, born, seq) is a total order here.
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	if g.timed {
		end := timeNowUnixNano()
		g.winNS[sid] = end - start
		g.winStart[sid], g.winEnd[sid] = start-g.epochNS, end-g.epochNS
	}
	g.winWorker[sid] = w
}

// accountWindow folds the finished window's per-shard samples into the
// group counters and the EWMA cost model, and emits trace spans. Runs on
// the coordinator, after the barrier, so it is single-threaded.
func (g *ShardGroup) accountWindow() {
	g.stats.Windows++
	var sum, max int64
	for _, sid := range g.order {
		ev := g.winEvents[sid]
		sum += ev
		if ev > max {
			max = ev
		}
		actual := g.winNS[sid]
		g.stats.ActualNS += actual
		g.stats.PredNS += g.winPred[sid]
		if g.cost[sid] == 0 {
			g.cost[sid] = float64(actual)
		} else {
			g.cost[sid] = (1-ewmaAlpha)*g.cost[sid] + ewmaAlpha*float64(actual)
		}
		if g.winWorker[sid] != g.ownerOf[sid] {
			g.stats.Steals++
		}
	}
	g.stats.Events += sum
	if len(g.order) > 0 && sum > 0 {
		mean := float64(sum) / float64(len(g.order))
		if r := float64(max) / mean; r > 0 {
			g.imbalanceSum += r
			if r > g.stats.ImbalanceMax {
				g.stats.ImbalanceMax = r
			}
		}
	} else {
		g.imbalanceSum += 1
	}
	if g.span != nil {
		win := g.stats.Windows - 1
		for sid := range g.shards {
			if g.next[sid] > g.limit {
				continue
			}
			g.span(ShardSpan{
				Window:  win,
				Worker:  g.winWorker[sid],
				Shard:   sid,
				StartNS: g.winStart[sid],
				EndNS:   g.winEnd[sid],
				Events:  g.winEvents[sid],
				PredNS:  g.winPred[sid],
				Stolen:  g.winWorker[sid] != g.ownerOf[sid],
			})
		}
	}
}

// predict snapshots the EWMA prediction for every active shard (0 for cold
// shards, which are ordered by queue length instead).
func (g *ShardGroup) predict() {
	for _, sid := range g.order {
		g.winPred[sid] = int64(g.cost[sid])
	}
}

// deliver moves the window's cross-shard events into their destination
// queues in deterministic (at, born, src, seq) order. The per-shard
// outboxes were already sorted in parallel by the workers; the coordinator
// k-way-merges the sorted runs. Windows with no cross-shard traffic skip
// the merge entirely.
func (g *ShardGroup) deliver() {
	g.heads = g.heads[:0]
	total := 0
	for sid, s := range g.shards {
		if len(s.outbox) > 0 {
			g.heads = append(g.heads, sid)
			total += len(s.outbox)
		}
	}
	if total == 0 {
		g.stats.MergeSkips++
		g.tickOutboxes()
		return
	}
	g.stats.Merged += int64(total)
	if len(g.heads) == 1 {
		// A single sorted run needs no merge.
		for _, e := range g.shards[g.heads[0]].outbox {
			e.dst.atBorn(e.at, e.born, e.fn)
		}
	} else {
		// K-way merge over the sorted runs. The scan works on a compacted
		// list of live run tails (advanced in place, swap-removed when
		// exhausted), so each step touches only the head elements.
		g.runs = g.runs[:0]
		for _, sid := range g.heads {
			g.runs = append(g.runs, g.shards[sid].outbox)
		}
		runs := g.runs
		for len(runs) > 1 {
			best := 0
			be := &runs[0][0]
			for hi := 1; hi < len(runs); hi++ {
				if e := &runs[hi][0]; crossBefore(e, be) {
					best, be = hi, e
				}
			}
			// atBorn keeps the sender-side creation time as the same-time
			// tiebreak, so the event interleaves with the destination's
			// local events exactly as it would have on a single scheduler.
			be.dst.atBorn(be.at, be.born, be.fn)
			if runs[best] = runs[best][1:]; len(runs[best]) == 0 {
				runs[best] = runs[len(runs)-1]
				runs = runs[:len(runs)-1]
			}
		}
		for _, e := range runs[0] {
			e.dst.atBorn(e.at, e.born, e.fn)
		}
	}
	for _, sid := range g.heads {
		s := g.shards[sid]
		for i := range s.outbox {
			s.outbox[i] = crossEvent{}
		}
		s.outbox = s.outbox[:0]
	}
	for i := range g.runs {
		g.runs[i] = nil // do not pin a shrunk-away outbox array
	}
	g.tickOutboxes()
}

// crossBefore is the (at, born, src, seq) merge order. The heads compared
// always come from different outboxes, so src breaks every remaining tie.
func crossBefore(a, b *crossEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.born != b.born {
		return a.born < b.born
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// tickOutboxes advances every shard's outbox high-water bookkeeping by one
// window and shrinks buffers whose capacity greatly exceeds recent use: a
// spike window would otherwise pin the peak allocation for the rest of the
// run. Peak use per shrink epoch is recorded by Defer as the outbox grows;
// this runs at the barrier, after the outboxes have drained.
func (g *ShardGroup) tickOutboxes() {
	for _, s := range g.shards {
		s.outboxTick++
		if s.outboxTick < outboxShrinkEvery {
			continue
		}
		if c := cap(s.outbox); c > outboxMinCap && c > 4*s.outboxPeak {
			nc := 2 * s.outboxPeak
			if nc < outboxMinCap {
				nc = outboxMinCap
			}
			s.outbox = make([]crossEvent, 0, nc)
			g.stats.Shrinks++
		}
		s.outboxTick, s.outboxPeak = 0, 0
	}
}

// finish marks all shards terminally run and aggregates their deadlock
// state into one error.
func (g *ShardGroup) finish() error {
	live := 0
	var now Time
	var blocked []string
	for _, s := range g.shards {
		s.running = true
		if s.now > now {
			now = s.now
		}
		live += s.live
		if err := s.deadlock(); err != nil {
			blocked = append(blocked, err.(*DeadlockError).Blocked...)
		}
	}
	if live == 0 {
		return nil
	}
	slices.Sort(blocked)
	return &DeadlockError{Now: now, Blocked: blocked}
}

// RunPaced paces a single-shard group against the wall clock, exactly like
// Scheduler.RunPaced. Pacing fundamentally requires observing every event
// from one sequential drive loop, so multi-shard groups reject it with a
// clear error rather than silently serializing.
func (g *ShardGroup) RunPaced(scale float64) error {
	if len(g.shards) == 1 {
		return g.shards[0].RunPaced(scale)
	}
	return fmt.Errorf("sim: RunPaced is not supported with %d shards: pacing requires the sequential single-loop drive; use Run, or a single shard", len(g.shards))
}

// runWindow drives one shard through one conservative window: all queued
// events at or before limit. Unlike the public drives it never marks the
// scheduler terminally run — the queue legitimately drains between windows.
func (s *Scheduler) runWindow(limit Time) {
	s.windowing = true
	s.startDrive(limit, true)
	for len(s.queue) > 0 && s.queue[0].at <= limit {
		s.dispatch(s.queue.pop())
	}
	s.endDrive(false)
	s.windowing = false
}

// Defer schedules fn at absolute time t on dst. On the local scheduler it
// is exactly At. Across shards of the same group it becomes a buffered
// cross-shard event, delivered at the next window barrier; t must respect
// the group's lookahead (t >= now + lookahead), which models the minimum
// cross-shard link latency and is what makes the conservative windows safe.
func (s *Scheduler) Defer(dst *Scheduler, t Time, fn func()) {
	if dst == s {
		s.At(t, fn)
		return
	}
	if s.group == nil || dst.group != s.group {
		panic("sim: Defer target is not a shard of the same group")
	}
	if t < s.now.Add(s.group.lookahead) {
		panic(fmt.Sprintf("sim: cross-shard event at %v violates lookahead %v (now %v)",
			t, s.group.lookahead, s.now))
	}
	s.outSeq++
	s.outbox = append(s.outbox, crossEvent{dst: dst, at: t, born: s.now, src: s.shardID, seq: s.outSeq, fn: fn})
	if n := len(s.outbox); n > s.outboxPeak {
		s.outboxPeak = n
	}
}

// Group returns the shard group this scheduler belongs to, or nil for a
// standalone scheduler (including the single shard of a one-shard group).
func (s *Scheduler) Group() *ShardGroup { return s.group }

// ShardID returns the scheduler's shard index within its group (0 for a
// standalone scheduler).
func (s *Scheduler) ShardID() int { return s.shardID }
