package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("new scheduler clock = %v, want 0", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("empty run: %v", err)
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(5*Millisecond) {
		t.Fatalf("woke at %v, want 5ms", Duration(at))
	}
}

func TestSequentialSleeps(t *testing.T) {
	s := New()
	var marks []Time
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(Duration(i+1) * Microsecond)
			marks = append(marks, p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{1000, 3000, 6000, 10000}
	for i, w := range want {
		if marks[i] != w {
			t.Errorf("mark[%d] = %d, want %d", i, marks[i], w)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
		p.Yield()
		order = append(order, "b2")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventOrderingIsDeterministic(t *testing.T) {
	run := func() []int {
		s := New()
		var got []int
		for i := 0; i < 50; i++ {
			i := i
			// All events at the same instant must fire in scheduling order.
			s.At(Time(Millisecond), func() { got = append(got, i) })
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != i || b[i] != i {
			t.Fatalf("nondeterministic same-time ordering: %v vs %v", a, b)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Proc) { p.Sleep(Millisecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(0, func() {})
}

func TestNegativeSleepPanics(t *testing.T) {
	s := New()
	var panicked bool
	s.Spawn("p", func(p *Proc) {
		defer func() { panicked = recover() != nil }()
		p.Sleep(-1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestSpawnFromProc(t *testing.T) {
	s := New()
	var childAt Time
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		p.Scheduler().Spawn("child", func(c *Proc) {
			c.Sleep(3 * Microsecond)
			childAt = c.Now()
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != Time(5*Microsecond) {
		t.Fatalf("child finished at %v, want 5us", Duration(childAt))
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	var m Mutex
	s.Spawn("holder", func(p *Proc) {
		m.Lock(p)
		// Never unlocks; the waiter below deadlocks.
		var c Completion
		c.Wait(p)
	})
	s.Spawn("waiter", func(p *Proc) {
		m.Lock(p)
	})
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked procs = %v, want 2 entries", de.Blocked)
	}
}

func TestMutexExcludes(t *testing.T) {
	s := New()
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 8; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(Microsecond)
			inside--
			m.Unlock(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max procs inside critical section = %d, want 1", maxInside)
	}
	if s.Now() != Time(8*Microsecond) {
		t.Fatalf("serialized critical sections ended at %v, want 8us", Duration(s.Now()))
	}
}

func TestMutexFIFO(t *testing.T) {
	s := New()
	var m Mutex
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Duration(i)) // stagger arrival: w0 first
			m.Lock(p)
			order = append(order, i)
			p.Sleep(Microsecond)
			m.Unlock(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("lock grant order = %v, want FIFO", order)
	}
}

func TestMutexTryLock(t *testing.T) {
	s := New()
	var m Mutex
	var got []bool
	s.Spawn("a", func(p *Proc) {
		got = append(got, m.TryLock(p))
		got = append(got, m.TryLock(p))
		m.Unlock(p)
		got = append(got, m.TryLock(p))
		m.Unlock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TryLock results = %v, want %v", got, want)
		}
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	s := New()
	var m Mutex
	var panicked bool
	s.Spawn("a", func(p *Proc) {
		defer func() { panicked = recover() != nil }()
		m.Unlock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("unlock of unheld mutex did not panic")
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	s := New()
	var m Mutex
	c := NewCond(&m)
	ready := 0
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("waiter%d", i), func(p *Proc) {
			m.Lock(p)
			ready++
			for woken == 0 {
				c.Wait(p)
			}
			woken--
			m.Unlock(p)
		})
	}
	s.Spawn("signaler", func(p *Proc) {
		p.Sleep(Millisecond)
		m.Lock(p)
		woken = 3
		c.Broadcast(p)
		m.Unlock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 0 {
		t.Fatalf("woken = %d, want 0 (all waiters released)", woken)
	}
}

func TestWaitGroup(t *testing.T) {
	s := New()
	var wg WaitGroup
	wg.Add(s, 3)
	doneAt := Time(-1)
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
			p.Sleep(Duration(i+1) * Millisecond)
			wg.Done(p.Scheduler())
		})
	}
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != Time(3*Millisecond) {
		t.Fatalf("waitgroup released at %v, want 3ms", Duration(doneAt))
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	s := New()
	released := false
	var wg WaitGroup
	s.Spawn("w", func(p *Proc) {
		wg.Wait(p) // counter already zero: returns immediately
		released = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !released {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	s := New()
	b := NewBarrier(4)
	var releases []Time
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Duration(i) * Millisecond)
			b.Await(p)
			releases = append(releases, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range releases {
		if r != Time(3*Millisecond) {
			t.Fatalf("releases = %v, want all at 3ms", releases)
		}
	}
}

func TestBarrierIsReusable(t *testing.T) {
	s := New()
	b := NewBarrier(2)
	var hits int
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 5; round++ {
				p.Sleep(Duration(i+1) * Microsecond)
				b.Await(p)
				hits++
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 10 {
		t.Fatalf("barrier rounds completed = %d, want 10", hits)
	}
}

func TestCompletion(t *testing.T) {
	s := New()
	var c Completion
	var waitedAt, lateAt Time
	s.Spawn("waiter", func(p *Proc) {
		c.Wait(p)
		waitedAt = p.Now()
	})
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		c.Fire(p.Scheduler())
	})
	s.Spawn("late", func(p *Proc) {
		p.Sleep(9 * Microsecond)
		c.Wait(p) // already fired: no block
		lateAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if waitedAt != Time(7*Microsecond) {
		t.Fatalf("waiter released at %v, want 7us", Duration(waitedAt))
	}
	if lateAt != Time(9*Microsecond) {
		t.Fatalf("late waiter at %v, want 9us", Duration(lateAt))
	}
}

func TestCompletionDoubleFirePanics(t *testing.T) {
	s := New()
	var panicked bool
	s.Spawn("p", func(p *Proc) {
		var c Completion
		c.Fire(p.Scheduler())
		defer func() { panicked = recover() != nil }()
		c.Fire(p.Scheduler())
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("double fire did not panic")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var ticks []Time
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Millisecond)
			ticks = append(ticks, p.Now())
		}
	})
	drained := s.RunUntil(Time(3 * Millisecond))
	if drained {
		t.Fatal("RunUntil reported drained with events pending")
	}
	if len(ticks) != 3 {
		t.Fatalf("ticks after RunUntil(3ms) = %d, want 3", len(ticks))
	}
}

// Property: for any multiset of sleep durations spread over procs, the
// simulation ends at the max per-proc sum, and each proc observes
// monotonically nondecreasing time.
func TestQuickSleepSums(t *testing.T) {
	f := func(raw [][]uint16) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true // constrain the space; quick still explores widely
		}
		s := New()
		var maxSum Duration
		ok := true
		for pi, ds := range raw {
			if len(ds) > 20 {
				ds = ds[:20]
			}
			var sum Duration
			for _, d := range ds {
				sum += Duration(d)
			}
			if sum > maxSum {
				maxSum = sum
			}
			ds := ds
			s.Spawn(fmt.Sprintf("p%d", pi), func(p *Proc) {
				last := p.Now()
				for _, d := range ds {
					p.Sleep(Duration(d))
					if p.Now() < last {
						ok = false
					}
					last = p.Now()
				}
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return ok && s.Now() == Time(maxSum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutex-protected increments never lose updates regardless of the
// interleaving produced by random sleeps.
func TestQuickMutexCounter(t *testing.T) {
	f := func(seed int64, nProcs uint8, nIters uint8) bool {
		procs := int(nProcs%8) + 1
		iters := int(nIters%16) + 1
		rng := rand.New(rand.NewSource(seed))
		delays := make([][]Duration, procs)
		for i := range delays {
			delays[i] = make([]Duration, iters)
			for j := range delays[i] {
				delays[i][j] = Duration(rng.Intn(1000))
			}
		}
		s := New()
		var m Mutex
		counter := 0
		for i := 0; i < procs; i++ {
			i := i
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < iters; j++ {
					p.Sleep(delays[i][j])
					m.Lock(p)
					c := counter
					p.Sleep(Duration(rng.Intn(10)))
					counter = c + 1
					m.Unlock(p)
				}
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return counter == procs*iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{-500, "-500ns"},
		{2500, "2.5us"},
		{Millisecond, "1ms"},
		{1500 * Millisecond, "1.5s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(100)
	b := a.Add(50)
	if b != 150 {
		t.Fatalf("Add: got %d", b)
	}
	if b.Sub(a) != 50 {
		t.Fatalf("Sub: got %d", b.Sub(a))
	}
}

func TestRunPacedMatchesRunResults(t *testing.T) {
	build := func() (*Scheduler, *[]Time) {
		s := New()
		var marks []Time
		s.Spawn("p", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(Duration(i+1) * Microsecond)
				marks = append(marks, p.Now())
			}
		})
		return s, &marks
	}
	s1, m1 := build()
	if err := s1.Run(); err != nil {
		t.Fatal(err)
	}
	s2, m2 := build()
	// Enormous scale: effectively no pacing sleeps, but the paced path.
	if err := s2.RunPaced(1e12); err != nil {
		t.Fatal(err)
	}
	if len(*m1) != len(*m2) {
		t.Fatalf("different mark counts: %d vs %d", len(*m1), len(*m2))
	}
	for i := range *m1 {
		if (*m1)[i] != (*m2)[i] {
			t.Fatalf("paced run diverged at %d: %v vs %v", i, (*m1)[i], (*m2)[i])
		}
	}
}

func TestRunPacedActuallyPaces(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Proc) { p.Sleep(20 * Millisecond) })
	start := nowWall()
	if err := s.RunPaced(2); err != nil { // 20ms virtual at 2x = >=10ms wall
		t.Fatal(err)
	}
	if elapsed := sinceWall(start); elapsed < 8*Millisecond {
		t.Fatalf("paced run took %v wall, want >= ~10ms", elapsed)
	}
}

func TestRunPacedBadScalePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive scale did not panic")
		}
	}()
	s.RunPaced(0)
}

// wall-clock helpers for pacing tests, in sim.Duration units.
func nowWall() int64                 { return timeNowUnixNano() }
func sinceWall(start int64) Duration { return Duration(timeNowUnixNano() - start) }

func TestCondBroadcastFromEvent(t *testing.T) {
	s := New()
	var m Mutex
	c := NewCond(&m)
	released := 0
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Lock(p)
			c.Wait(p)
			released++
			m.Unlock(p)
		})
	}
	// An event (not a proc) releases the waiters.
	s.Spawn("arm", func(p *Proc) {
		p.Sleep(Millisecond)
		p.Scheduler().After(Millisecond, func() {
			c.BroadcastFromEvent(p.Scheduler())
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if released != 3 {
		t.Fatalf("released %d waiters, want 3", released)
	}
}

func TestAfterSchedulesRelativeEvent(t *testing.T) {
	s := New()
	var firedAt Time
	s.Spawn("p", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		s.After(3*Millisecond, func() { firedAt = s.Now() })
		p.Sleep(10 * Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if firedAt != Time(5*Millisecond) {
		t.Fatalf("After fired at %v, want 5ms", Duration(firedAt))
	}
}

func TestAfterNegativePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestDeadlockErrorNamesBlockedProcs(t *testing.T) {
	s := New()
	var c Completion
	s.Spawn("stuck-proc", func(p *Proc) { c.Wait(p) })
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 || !strings.Contains(de.Blocked[0], "stuck-proc") ||
		!strings.Contains(de.Blocked[0], "completion wait") {
		t.Fatalf("diagnostics = %v", de.Blocked)
	}
	if de.Error() == "" {
		t.Fatal("empty error string")
	}
}
