package sim

import (
	"fmt"
	"testing"
)

// poolWorkload spawns a deterministic, deliberately imbalanced cross-shard
// workload on g and returns a function that snapshots its observable
// outcome: per-shard logs of (time, value) pairs appended by event
// execution. Shard 0 is the hot shard (fan bursts each round); the others
// run a light token ring through shard 0. Any two runs of the same shard
// count must produce identical logs, whatever the pool size or stealing
// mode.
func poolWorkload(g *ShardGroup, rounds, burst int) func() []string {
	n := g.Shards()
	logs := make([][]string, n)
	const la = Duration(1000)
	for i := 0; i < n; i++ {
		i := i
		s := g.Shard(i)
		s.Spawn(fmt.Sprintf("load%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				logs[i] = append(logs[i], fmt.Sprintf("s%d r%d @%d", i, r, p.Now()))
				if i == 0 {
					// Hot shard: burst of local events plus a fan of cross
					// events to every other shard.
					for k := 0; k < burst; k++ {
						k := k
						s.At(p.Now(), func() { logs[0] = append(logs[0], fmt.Sprintf("burst%d", k)) })
					}
					for d := 1; d < n; d++ {
						d := d
						s.Defer(g.Shard(d), p.Now().Add(la), func() {
							logs[d] = append(logs[d], fmt.Sprintf("x0->%d", d))
						})
					}
				} else if r%2 == 1 {
					// Light shards reply to the hot shard every other round.
					s.Defer(g.Shard(0), p.Now().Add(la), func() {
						logs[0] = append(logs[0], fmt.Sprintf("x%d->0", i))
					})
				}
				p.Sleep(la)
			}
		})
	}
	return func() []string {
		var all []string
		for _, l := range logs {
			all = append(all, l...)
		}
		return all
	}
}

// TestShardPoolDeterminism pins the core contract of the worker pool: the
// same workload run at every pool size and stealing mode produces an
// identical event-execution log. Dispatch order, worker count, and stealing
// may only change wall-clock time.
func TestShardPoolDeterminism(t *testing.T) {
	const shards, rounds, burst = 8, 20, 50
	run := func(workers int, stealing bool) []string {
		g := NewShardGroup(shards, 1000)
		g.SetWorkers(workers)
		g.SetStealing(stealing)
		snap := poolWorkload(g, rounds, burst)
		if err := g.Run(); err != nil {
			t.Fatalf("workers=%d stealing=%v: %v", workers, stealing, err)
		}
		return snap()
	}
	want := run(1, true)
	if len(want) == 0 {
		t.Fatal("workload produced no events")
	}
	for _, workers := range []int{1, 2, 8} {
		for _, stealing := range []bool{true, false} {
			got := run(workers, stealing)
			if len(got) != len(want) {
				t.Fatalf("workers=%d stealing=%v: %d log entries, want %d", workers, stealing, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d stealing=%v: log[%d] = %q, want %q", workers, stealing, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardPoolStats checks the execution counters of a known workload:
// windows and events are counted, cross events are merged, and the
// imbalance ratio reflects the hot shard.
func TestShardPoolStats(t *testing.T) {
	g := NewShardGroup(4, 1000)
	g.SetWorkers(2)
	snap := poolWorkload(g, 10, 100)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	_ = snap()
	st := g.Stats()
	if st.Shards != 4 || st.Workers != 2 || !st.Stealing {
		t.Fatalf("identity counters wrong: %+v", st)
	}
	if st.Windows == 0 || st.Events == 0 {
		t.Fatalf("no windows or events counted: %+v", st)
	}
	if st.Merged == 0 {
		t.Fatalf("cross events were produced but Merged == 0: %+v", st)
	}
	if st.ImbalanceMax < st.ImbalanceMean || st.ImbalanceMean < 1 {
		t.Fatalf("imbalance ratios inconsistent: %+v", st)
	}
	// The hot shard processes ~100x the events of the light shards, so the
	// peak window imbalance must be well above balanced.
	if st.ImbalanceMax < 1.5 {
		t.Fatalf("hot-shard workload reports near-balanced windows: %+v", st)
	}
}

// TestShardPoolSteals runs the hot-shard workload on a 2-worker pool where
// the static owner assignment is maximally wrong (all heavy work in worker
// 0's chunk). A schedule with zero steals across every window of several
// runs would require every cursor claim to coincidentally match static
// ownership; retry a few fresh groups so the assertion is robust against
// one unlucky schedule.
func TestShardPoolSteals(t *testing.T) {
	for attempt := 0; attempt < 5; attempt++ {
		g := NewShardGroup(8, 1000)
		g.SetWorkers(2)
		snap := poolWorkload(g, 30, 500)
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		_ = snap()
		if st := g.Stats(); st.Steals > 0 {
			return
		}
	}
	t.Fatal("no steals observed in 5 imbalanced runs on a 2-worker pool")
}

// TestShardPoolSpans exercises the span observer: every executed
// shard-window is reported exactly once, in coordinator order, with
// consistent worker lanes and event counts.
func TestShardPoolSpans(t *testing.T) {
	g := NewShardGroup(4, 1000)
	g.SetWorkers(2)
	var spans []ShardSpan
	g.SetSpanObserver(func(sp ShardSpan) { spans = append(spans, sp) })
	snap := poolWorkload(g, 10, 20)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	_ = snap()
	st := g.Stats()
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	var events int64
	lastWin := int64(-1)
	for _, sp := range spans {
		if sp.Window < lastWin {
			t.Fatalf("span windows out of order: %d after %d", sp.Window, lastWin)
		}
		lastWin = sp.Window
		if sp.Worker < 0 || sp.Worker >= st.Workers {
			t.Fatalf("span worker %d outside pool of %d", sp.Worker, st.Workers)
		}
		if sp.Shard < 0 || sp.Shard >= st.Shards {
			t.Fatalf("span shard %d outside group of %d", sp.Shard, st.Shards)
		}
		if sp.EndNS < sp.StartNS {
			t.Fatalf("span ends before it starts: %+v", sp)
		}
		events += sp.Events
	}
	if lastWin != st.Windows-1 {
		t.Fatalf("last span window %d, want %d", lastWin, st.Windows-1)
	}
	if events != st.Events {
		t.Fatalf("span events sum %d != stats events %d", events, st.Events)
	}
}

// TestShardOutboxShrink pins the barrier buffer high-water fix: a single
// spike window must not hold the outbox at peak capacity for the rest of
// the run — after enough quiet windows the buffer is reallocated down.
func TestShardOutboxShrink(t *testing.T) {
	const la = Duration(1000)
	const spike = 4096
	g := NewShardGroup(2, la)
	g.SetWorkers(1)
	s, dst := g.Shard(0), g.Shard(1)
	s.Spawn("spiker", func(p *Proc) {
		// One spike window, then enough single-event windows to cross the
		// shrink epoch twice.
		for k := 0; k < spike; k++ {
			s.Defer(dst, p.Now().Add(la), func() {})
		}
		p.Sleep(la)
		for r := 0; r < 3*outboxShrinkEvery; r++ {
			s.Defer(dst, p.Now().Add(la), func() {})
			p.Sleep(la)
		}
	})
	dst.Spawn("idle", func(p *Proc) { p.Sleep(la) })
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if c := cap(s.outbox); c >= spike {
		t.Fatalf("outbox capacity %d still at spike level %d after quiet windows", c, spike)
	}
	if st := g.Stats(); st.Shrinks == 0 {
		t.Fatalf("no shrink counted: %+v", st)
	}
}

// TestShardPoolSettersContract pins the configuration lifecycle: pool knobs
// are frozen once Run starts.
func TestShardPoolSettersContract(t *testing.T) {
	g := NewShardGroup(2, 1000)
	for i := 0; i < 2; i++ {
		s := g.Shard(i)
		s.Spawn("noop", func(p *Proc) { _ = s })
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"SetWorkers":      func() { g.SetWorkers(2) },
		"SetStealing":     func() { g.SetStealing(false) },
		"SetSpanObserver": func() { g.SetSpanObserver(func(ShardSpan) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after Run did not panic", name)
				}
			}()
			fn()
		}()
	}
}
