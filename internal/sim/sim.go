// Package sim provides a deterministic discrete-event simulation kernel with
// cooperative actors ("procs").
//
// Each proc is backed by a goroutine, but the scheduler guarantees that at
// most one proc executes at any instant: control is handed to a proc via an
// unbuffered channel and handed back when the proc blocks (Sleep, mutex wait,
// condition wait, ...). All simulator state is therefore mutated only by the
// current token holder and needs no locking. Events with equal timestamps
// fire in the order they were scheduled, so runs are bitwise reproducible.
//
// The kernel exposes virtual time (Time, Duration in nanoseconds) and a small
// set of synchronization primitives (Mutex, Cond, WaitGroup, Barrier,
// Completion) mirroring their sync-package counterparts but operating in
// virtual time.
package sim

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
	"time"
)

// Time is an absolute instant of virtual time, in nanoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It deliberately mirrors
// time.Duration so the usual constants convert directly.
type Duration int64

// Handy duration units, matching time package values.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e3 }

// Milliseconds returns the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e6 }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// MarshalText renders the duration exactly, using the largest unit that
// divides it evenly ("900ns", "10ms", "2s"), so JSON round trips are
// lossless. This is distinct from String, whose adaptive %.3g formatting is
// for display only.
func (d Duration) MarshalText() ([]byte, error) {
	if d < 0 {
		b, err := (-d).MarshalText()
		return append([]byte{'-'}, b...), err
	}
	switch {
	case d%Second == 0:
		return []byte(fmt.Sprintf("%ds", int64(d/Second))), nil
	case d%Millisecond == 0:
		return []byte(fmt.Sprintf("%dms", int64(d/Millisecond))), nil
	case d%Microsecond == 0:
		return []byte(fmt.Sprintf("%dus", int64(d/Microsecond))), nil
	default:
		return []byte(fmt.Sprintf("%dns", int64(d))), nil
	}
}

// UnmarshalText parses the forms accepted by ParseDuration.
func (d *Duration) UnmarshalText(b []byte) error {
	v, err := ParseDuration(string(b))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// ParseDuration parses durations such as "10ms", "100us", "250ns", "1.5s"
// (and negative forms) into virtual time.
func ParseDuration(s string) (Duration, error) {
	trimmed := strings.ToLower(strings.TrimSpace(s))
	neg := strings.HasPrefix(trimmed, "-")
	trimmed = strings.TrimPrefix(trimmed, "-")
	if trimmed == "" {
		return 0, fmt.Errorf("sim: empty duration")
	}
	mult := Nanosecond
	digits := trimmed
	switch {
	case strings.HasSuffix(trimmed, "ms"):
		mult, digits = Millisecond, strings.TrimSuffix(trimmed, "ms")
	case strings.HasSuffix(trimmed, "us"):
		mult, digits = Microsecond, strings.TrimSuffix(trimmed, "us")
	case strings.HasSuffix(trimmed, "ns"):
		digits = strings.TrimSuffix(trimmed, "ns")
	case strings.HasSuffix(trimmed, "s"):
		mult, digits = Second, strings.TrimSuffix(trimmed, "s")
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(digits), 64)
	if err != nil {
		return 0, fmt.Errorf("sim: bad duration %q", s)
	}
	v := n * float64(mult)
	// Converting a float beyond int64 range (or NaN) to Duration is
	// implementation-defined and can silently come out negative.
	if math.IsNaN(v) || v >= math.MaxInt64 || v <= -math.MaxInt64 {
		return 0, fmt.Errorf("sim: duration %q out of range", s)
	}
	d := Duration(v)
	if neg {
		d = -d
	}
	return d, nil
}

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback (fn != nil) or a proc wake (proc != nil).
// Proc wakes carry no closure at all: the run loop and the direct-handoff
// fast path resume the proc from its fields, so scheduling a wake never
// allocates. Events are recycled through the scheduler's freelist.
type event struct {
	at Time
	// born is the virtual time the event was created at, the first tiebreak
	// for same-time events. On a single scheduler seq order is already
	// nondecreasing in born (the clock is monotonic), so born never reorders
	// anything; it exists for cross-shard events merged at a window barrier,
	// which must interleave with local same-time events exactly as they
	// would have on one scheduler (see ShardGroup.deliver).
	born Time
	seq  uint64
	fn   func()
	proc *Proc
}

// eventQueue is a typed 4-ary min-heap ordering events by (time, creation
// time, sequence). A 4-ary layout halves the tree depth of the binary
// container/heap it replaced, and the concrete element type removes the
// interface{} boxing and the per-op indirect Less/Swap calls.
type eventQueue []*event

// less is the strict total order (at, born, seq); seq is unique, so there
// are no ties and heap stability is irrelevant.
func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].born != q[j].born {
		return q[i].born < q[j].born
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e *event) {
	h := append(*q, e)
	*q = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() *event {
	h := *q
	n := len(h) - 1
	e := h[0]
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	i := 0
	for {
		min := i
		base := 4*i + 1
		end := base + 4
		if end > n {
			end = n
		}
		for c := base; c < end; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return e
}

// DeadlockError is returned by Run when live procs remain but no future event
// can wake any of them.
type DeadlockError struct {
	// Now is the virtual time at which the simulation stalled.
	Now Time
	// Blocked lists "name: reason" for every parked proc.
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v with %d blocked procs: %s",
		Duration(e.Now), len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// maxTime is the fast-path drive limit for an unbounded Run.
const maxTime = Time(math.MaxInt64)

// Scheduler owns the virtual clock, the event queue, and all procs.
// The zero value is not usable; call New.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventQueue
	free    []*event // event freelist: every pop recycles into the next push
	live    int
	procSeq int

	// procs lists the live procs for deadlock diagnostics; finished procs
	// are swap-removed. Park reasons live on the Proc as a code + args and
	// are only formatted when a DeadlockError is built.
	procs []*Proc

	// token handoff: the scheduler sends on p.resume to run a proc and
	// receives on parked when the proc blocks or finishes.
	parked chan struct{}

	// driving is set while a drive loop (Run, RunPaced, RunUntil) is on the
	// stack; re-entering a drive from an event callback panics.
	driving bool
	// running becomes true once a drive has fully drained the queue; it is
	// terminal — no further drives are allowed.
	running bool
	// handoff enables the direct proc-to-proc token handoff: when a parking
	// proc finds a proc wake at the head of the queue (at or before limit),
	// it advances the clock and resumes that proc itself — or simply keeps
	// running on a self-wake — instead of bouncing the token through the
	// scheduler goroutine's resume/parked channel pair. RunPaced disables
	// it so the pacing loop sees every event.
	handoff bool
	limit   Time

	// Sharding state (see shard.go). group is nil for standalone schedulers
	// and for the single shard of a one-shard group, so the sequential fast
	// paths are untouched in that case. windowing marks a group-driven
	// window so startDrive can reject direct drives of group members.
	group     *ShardGroup
	shardID   int
	windowing bool
	outbox    []crossEvent
	outSeq    uint64
	// outboxPeak / outboxTick drive the barrier's outbox high-water shrink
	// policy (ShardGroup.tickOutboxes): peak use in the current shrink
	// epoch, and windows elapsed in it.
	outboxPeak int
	outboxTick int
}

// New returns an empty simulation scheduler with the clock at zero.
func New() *Scheduler {
	return &Scheduler{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// newEvent takes an event from the freelist (or allocates one) and stamps
// it with the next sequence number.
func (s *Scheduler) newEvent(t Time, fn func(), p *Proc) *event {
	s.seq++
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = new(event)
	}
	e.at, e.born, e.seq, e.fn, e.proc = t, s.now, s.seq, fn, p
	return e
}

// recycle returns a popped event to the freelist, dropping its references.
func (s *Scheduler) recycle(e *event) {
	e.fn, e.proc = nil, nil
	s.free = append(s.free, e)
}

// At schedules fn to run in scheduler context at absolute time t.
// Scheduling in the past panics: virtual time is monotonic.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.queue.push(s.newEvent(t, fn, nil))
}

// atBorn is At with an explicit creation stamp born <= t. The window
// barrier uses it so a cross-shard event inherits its sender-side creation
// time: same-time events then fire in creation-time order exactly as they
// would have on a single scheduler, instead of in barrier-delivery order.
func (s *Scheduler) atBorn(t, born Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := s.newEvent(t, fn, nil)
	e.born = born
	s.queue.push(e)
}

// After schedules fn to run d from now. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.At(s.now.Add(d), fn)
}

// parkKind encodes why a proc is parked; the human-readable reason is only
// formatted when a DeadlockError needs it, so the hot sleep/wake path never
// builds a diagnostic string.
type parkKind uint8

const (
	parkNone parkKind = iota
	parkSleep
	parkMutex
	parkCond
	parkWaitGroup
	parkBarrier
	parkCompletion
)

// Proc is a cooperative actor. Every blocking method must be called by the
// proc itself (i.e. from within the function passed to Spawn).
type Proc struct {
	s      *Scheduler
	name   string
	id     int
	idx    int // position in s.procs, for swap-removal on death
	resume chan struct{}
	dead   bool
	// wakeScheduled guards against double-wake: a proc may be the target of
	// at most one pending wake event.
	wakeScheduled bool
	// parkKind/parkA/parkB are the lazy park reason: a code plus two
	// numeric arguments, formatted by parkReason only on deadlock.
	parkKind     parkKind
	parkA, parkB int64
}

// parkReason formats the proc's current park reason, byte-identical to the
// strings the kernel used to build eagerly on every park.
func (p *Proc) parkReason() string {
	switch p.parkKind {
	case parkSleep:
		return fmt.Sprintf("sleep %v until %v", Duration(p.parkA), Time(p.parkB))
	case parkMutex:
		return "mutex wait"
	case parkCond:
		return "cond wait"
	case parkWaitGroup:
		return "waitgroup wait"
	case parkBarrier:
		return fmt.Sprintf("barrier gen %d", p.parkA)
	case parkCompletion:
		return "completion wait"
	default:
		return "running"
	}
}

// Name returns the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// ID returns the unique spawn-ordered id of the proc.
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Scheduler returns the scheduler this proc belongs to.
func (p *Proc) Scheduler() *Scheduler { return p.s }

// Spawn creates a new proc executing fn. It may be called before Run or from
// inside a running proc or event callback. The proc starts at the current
// virtual time.
func (s *Scheduler) Spawn(name string, fn func(p *Proc)) *Proc {
	s.procSeq++
	p := &Proc{
		s:      s,
		name:   name,
		id:     s.procSeq,
		idx:    len(s.procs),
		resume: make(chan struct{}),
	}
	s.procs = append(s.procs, p)
	s.live++
	go func() {
		<-p.resume
		fn(p)
		p.dead = true
		s.live--
		s.dropProc(p)
		s.parked <- struct{}{}
	}()
	s.wake(p)
	return p
}

// dropProc swap-removes a finished proc from the diagnostics list.
func (s *Scheduler) dropProc(p *Proc) {
	last := len(s.procs) - 1
	moved := s.procs[last]
	s.procs[p.idx] = moved
	moved.idx = p.idx
	s.procs[last] = nil
	s.procs = s.procs[:last]
}

// wake schedules p to resume at the current time. It is idempotent while a
// wake is already pending and a no-op on dead procs.
func (s *Scheduler) wake(p *Proc) {
	s.wakeAt(s.now, p)
}

// wakeAt schedules p to resume at time t. Idempotent while a wake is
// pending. The wake is a plain proc event — no closure is allocated.
func (s *Scheduler) wakeAt(t Time, p *Proc) {
	if p.dead || p.wakeScheduled {
		return
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	p.wakeScheduled = true
	s.queue.push(s.newEvent(t, nil, p))
}

// resumeProc hands the token to p from the scheduler loop and waits for it
// to park, finish, or hand the token onward.
func (s *Scheduler) resumeProc(p *Proc) {
	if p.dead {
		return
	}
	p.wakeScheduled = false
	p.parkKind = parkNone
	p.resume <- struct{}{}
	<-s.parked
}

// park blocks the calling proc until something wakes it. The kind and args
// form the lazy reason shown in deadlock diagnostics.
//
// Fast path (direct handoff): while handoff is enabled and the head of the
// queue is a proc wake at or before the drive limit, the parking proc plays
// scheduler itself — it advances the clock and either keeps running (the
// wake is its own: a sleep expiring with nothing scheduled before it) or
// passes the token straight to the woken proc. Either way the
// resume/parked channel round-trip through the scheduler goroutine is
// skipped; the scheduler loop only regains control when a non-wake event
// or the drive limit is next.
func (p *Proc) park(kind parkKind, a, b int64) {
	s := p.s
	p.parkKind, p.parkA, p.parkB = kind, a, b
	for s.handoff {
		if len(s.queue) == 0 {
			break
		}
		top := s.queue[0]
		if top.proc == nil || top.at > s.limit {
			break
		}
		q := top.proc
		s.queue.pop()
		s.now = top.at
		s.recycle(top)
		if q.dead {
			continue
		}
		q.wakeScheduled = false
		q.parkKind = parkNone
		if q == p {
			return // self-wake: keep running, zero channel operations
		}
		// Hand the token directly to q, then wait for our own wake. No
		// scheduler state may be touched after the send: q runs now.
		q.resume <- struct{}{}
		<-p.resume
		return
	}
	s.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the calling proc for d of virtual time. Zero is allowed and
// acts as a yield point ordered after already-scheduled same-time events.
// Negative d panics.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	s := p.s
	until := s.now.Add(d)
	s.wakeAt(until, p)
	p.park(parkSleep, int64(d), int64(until))
}

// Yield gives other same-time events a chance to run before continuing.
func (p *Proc) Yield() { p.Sleep(0) }

// startDrive begins a drive loop, enforcing the re-entrancy contract: a
// drive may not start while another is on the stack (an event callback
// calling Run) or after a previous drive has drained the queue.
func (s *Scheduler) startDrive(limit Time, handoff bool) {
	if s.group != nil && !s.windowing {
		panic("sim: scheduler belongs to a multi-shard group; drive it with ShardGroup.Run")
	}
	if s.driving {
		panic("sim: drive re-entered from within a drive")
	}
	if s.running {
		panic("sim: Run called twice")
	}
	s.driving = true
	s.handoff = handoff
	s.limit = limit
}

// endDrive finishes a drive loop; drained drives are terminal.
func (s *Scheduler) endDrive(drained bool) {
	s.driving = false
	s.handoff = false
	if drained {
		s.running = true
	}
}

// dispatch fires one popped event: it resumes the target proc or runs the
// callback. The event is recycled first (into locals), so callbacks and
// resumed procs can immediately reuse it for new events.
func (s *Scheduler) dispatch(e *event) {
	if e.at < s.now {
		panic("sim: time went backwards")
	}
	s.now = e.at
	if e.proc != nil {
		p := e.proc
		s.recycle(e)
		s.resumeProc(p)
		return
	}
	fn := e.fn
	s.recycle(e)
	fn()
}

// deadlock builds the drive result: nil when every proc finished, a
// *DeadlockError naming the parked procs otherwise. Reasons are formatted
// here, lazily — never on the park fast path.
func (s *Scheduler) deadlock() error {
	if s.live == 0 {
		return nil
	}
	blocked := make([]string, 0, len(s.procs))
	for _, p := range s.procs {
		blocked = append(blocked, fmt.Sprintf("%s(#%d): %s", p.name, p.id, p.parkReason()))
	}
	slices.Sort(blocked)
	return &DeadlockError{Now: s.now, Blocked: blocked}
}

// Run drives the simulation until the event queue drains. It returns nil if
// every proc has finished, and a *DeadlockError if live procs remain parked
// with no event able to wake them. Run may be called exactly once, except
// that it may follow partial RunUntil drives to finish the simulation;
// calling it from within an event callback panics.
func (s *Scheduler) Run() error {
	s.startDrive(maxTime, true)
	for len(s.queue) > 0 {
		s.dispatch(s.queue.pop())
	}
	s.endDrive(true)
	return s.deadlock()
}

// RunPaced drives the simulation like Run but paces virtual time against
// the wall clock: one second of virtual time takes 1/scale wall seconds
// (scale 2 runs twice as fast as real time). Useful for watching timelines
// live in demos; measurement results are identical to Run since virtual
// timestamps do not depend on pacing. Direct handoff is disabled so the
// pacing loop observes every event.
func (s *Scheduler) RunPaced(scale float64) error {
	if scale <= 0 {
		panic("sim: pacing scale must be positive")
	}
	s.startDrive(maxTime, false)
	wallStart := timeNowUnixNano()
	simStart := s.now
	for len(s.queue) > 0 {
		e := s.queue.pop()
		// Sleep until the wall clock catches up with this event's virtual
		// time at the requested scale.
		virtualAhead := time.Duration(float64(e.at-simStart) / scale)
		if lag := virtualAhead - time.Duration(timeNowUnixNano()-wallStart); lag > 0 {
			timeSleep(lag)
		}
		s.dispatch(e)
	}
	s.endDrive(true)
	return s.deadlock()
}

// RunUntil drives the simulation until the clock would pass t or the queue
// drains. Events at exactly t still fire. It reports whether the queue
// drained (all work done). RunUntil may be called repeatedly to drive the
// simulation incrementally, and a final Run/RunPaced may finish the drive;
// once any drive has drained the queue, all further drives panic, as does
// re-entering a drive from an event callback.
func (s *Scheduler) RunUntil(t Time) bool {
	s.startDrive(t, true)
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.dispatch(s.queue.pop())
	}
	drained := len(s.queue) == 0
	s.endDrive(drained)
	return drained
}

// timeNowUnixNano and timeSleep are test seams for wall-clock access; only
// RunPaced and the shard pool's cost/telemetry sampling (shard.go) consult
// the wall clock, and only through these. The shard samples feed the LPT
// dispatch order and trace spans, never the simulation itself.
var (
	timeNowUnixNano = func() int64 { return time.Now().UnixNano() }
	timeSleep       = func(d time.Duration) { time.Sleep(d) }
)
