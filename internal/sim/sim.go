// Package sim provides a deterministic discrete-event simulation kernel with
// cooperative actors ("procs").
//
// Each proc is backed by a goroutine, but the scheduler guarantees that at
// most one proc executes at any instant: control is handed to a proc via an
// unbuffered channel and handed back when the proc blocks (Sleep, mutex wait,
// condition wait, ...). All simulator state is therefore mutated only by the
// current token holder and needs no locking. Events with equal timestamps
// fire in the order they were scheduled, so runs are bitwise reproducible.
//
// The kernel exposes virtual time (Time, Duration in nanoseconds) and a small
// set of synchronization primitives (Mutex, Cond, WaitGroup, Barrier,
// Completion) mirroring their sync-package counterparts but operating in
// virtual time.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Time is an absolute instant of virtual time, in nanoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It deliberately mirrors
// time.Duration so the usual constants convert directly.
type Duration int64

// Handy duration units, matching time package values.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e3 }

// Milliseconds returns the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e6 }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// MarshalText renders the duration exactly, using the largest unit that
// divides it evenly ("900ns", "10ms", "2s"), so JSON round trips are
// lossless. This is distinct from String, whose adaptive %.3g formatting is
// for display only.
func (d Duration) MarshalText() ([]byte, error) {
	if d < 0 {
		b, err := (-d).MarshalText()
		return append([]byte{'-'}, b...), err
	}
	switch {
	case d%Second == 0:
		return []byte(fmt.Sprintf("%ds", int64(d/Second))), nil
	case d%Millisecond == 0:
		return []byte(fmt.Sprintf("%dms", int64(d/Millisecond))), nil
	case d%Microsecond == 0:
		return []byte(fmt.Sprintf("%dus", int64(d/Microsecond))), nil
	default:
		return []byte(fmt.Sprintf("%dns", int64(d))), nil
	}
}

// UnmarshalText parses the forms accepted by ParseDuration.
func (d *Duration) UnmarshalText(b []byte) error {
	v, err := ParseDuration(string(b))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// ParseDuration parses durations such as "10ms", "100us", "250ns", "1.5s"
// (and negative forms) into virtual time.
func ParseDuration(s string) (Duration, error) {
	trimmed := strings.ToLower(strings.TrimSpace(s))
	neg := strings.HasPrefix(trimmed, "-")
	trimmed = strings.TrimPrefix(trimmed, "-")
	if trimmed == "" {
		return 0, fmt.Errorf("sim: empty duration")
	}
	mult := Nanosecond
	digits := trimmed
	switch {
	case strings.HasSuffix(trimmed, "ms"):
		mult, digits = Millisecond, strings.TrimSuffix(trimmed, "ms")
	case strings.HasSuffix(trimmed, "us"):
		mult, digits = Microsecond, strings.TrimSuffix(trimmed, "us")
	case strings.HasSuffix(trimmed, "ns"):
		digits = strings.TrimSuffix(trimmed, "ns")
	case strings.HasSuffix(trimmed, "s"):
		mult, digits = Second, strings.TrimSuffix(trimmed, "s")
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(digits), 64)
	if err != nil {
		return 0, fmt.Errorf("sim: bad duration %q", s)
	}
	d := Duration(n * float64(mult))
	if neg {
		d = -d
	}
	return d, nil
}

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// DeadlockError is returned by Run when live procs remain but no future event
// can wake any of them.
type DeadlockError struct {
	// Now is the virtual time at which the simulation stalled.
	Now Time
	// Blocked lists "name: reason" for every parked proc.
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v with %d blocked procs: %s",
		Duration(e.Now), len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Scheduler owns the virtual clock, the event queue, and all procs.
// The zero value is not usable; call New.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventHeap
	live    int
	procSeq int

	// token handoff: the scheduler sends on p.resume to run a proc and
	// receives on parked when the proc blocks or finishes.
	parked chan struct{}

	// blocked tracks parked procs for deadlock diagnostics.
	blocked map[*Proc]string

	running bool
}

// New returns an empty simulation scheduler with the clock at zero.
func New() *Scheduler {
	return &Scheduler{
		parked:  make(chan struct{}),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run in scheduler context at absolute time t.
// Scheduling in the past panics: virtual time is monotonic.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.At(s.now.Add(d), fn)
}

// Proc is a cooperative actor. Every blocking method must be called by the
// proc itself (i.e. from within the function passed to Spawn).
type Proc struct {
	s      *Scheduler
	name   string
	id     int
	resume chan struct{}
	dead   bool
	// wakeScheduled guards against double-wake: a proc may be the target of
	// at most one pending wake event.
	wakeScheduled bool
}

// Name returns the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// ID returns the unique spawn-ordered id of the proc.
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Scheduler returns the scheduler this proc belongs to.
func (p *Proc) Scheduler() *Scheduler { return p.s }

// Spawn creates a new proc executing fn. It may be called before Run or from
// inside a running proc or event callback. The proc starts at the current
// virtual time.
func (s *Scheduler) Spawn(name string, fn func(p *Proc)) *Proc {
	s.procSeq++
	p := &Proc{
		s:      s,
		name:   name,
		id:     s.procSeq,
		resume: make(chan struct{}),
	}
	s.live++
	go func() {
		<-p.resume
		fn(p)
		p.dead = true
		s.live--
		s.parked <- struct{}{}
	}()
	s.wake(p)
	return p
}

// wake schedules p to resume at the current time. It is idempotent while a
// wake is already pending and a no-op on dead procs.
func (s *Scheduler) wake(p *Proc) {
	s.wakeAt(s.now, p)
}

// wakeAt schedules p to resume at time t. Idempotent while a wake is pending.
func (s *Scheduler) wakeAt(t Time, p *Proc) {
	if p.dead || p.wakeScheduled {
		return
	}
	p.wakeScheduled = true
	s.At(t, func() {
		if p.dead {
			return
		}
		p.wakeScheduled = false
		delete(s.blocked, p)
		p.resume <- struct{}{}
		<-s.parked
	})
}

// park blocks the calling proc until something wakes it. reason appears in
// deadlock diagnostics.
func (p *Proc) park(reason string) {
	p.s.blocked[p] = reason
	p.s.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the calling proc for d of virtual time. Zero is allowed and
// acts as a yield point ordered after already-scheduled same-time events.
// Negative d panics.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	s := p.s
	s.wakeAt(s.now.Add(d), p)
	p.park(fmt.Sprintf("sleep %v until %v", d, s.now.Add(d)))
}

// Yield gives other same-time events a chance to run before continuing.
func (p *Proc) Yield() { p.Sleep(0) }

// Run drives the simulation until the event queue drains. It returns nil if
// every proc has finished, and a *DeadlockError if live procs remain parked
// with no event able to wake them. Run must be called exactly once.
func (s *Scheduler) Run() error {
	if s.running {
		panic("sim: Run called twice")
	}
	s.running = true
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.at < s.now {
			panic("sim: time went backwards")
		}
		s.now = e.at
		e.fn()
	}
	if s.live > 0 {
		var blocked []string
		for p, why := range s.blocked {
			blocked = append(blocked, fmt.Sprintf("%s(#%d): %s", p.name, p.id, why))
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: s.now, Blocked: blocked}
	}
	return nil
}

// RunPaced drives the simulation like Run but paces virtual time against
// the wall clock: one second of virtual time takes 1/scale wall seconds
// (scale 2 runs twice as fast as real time). Useful for watching timelines
// live in demos; measurement results are identical to Run since virtual
// timestamps do not depend on pacing.
func (s *Scheduler) RunPaced(scale float64) error {
	if s.running {
		panic("sim: Run called twice")
	}
	if scale <= 0 {
		panic("sim: pacing scale must be positive")
	}
	s.running = true
	wallStart := time.Now()
	simStart := s.now
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.at < s.now {
			panic("sim: time went backwards")
		}
		// Sleep until the wall clock catches up with this event's virtual
		// time at the requested scale.
		virtualAhead := time.Duration(float64(e.at-simStart) / scale)
		if lag := virtualAhead - time.Since(wallStart); lag > 0 {
			time.Sleep(lag)
		}
		s.now = e.at
		e.fn()
	}
	if s.live > 0 {
		var blocked []string
		for p, why := range s.blocked {
			blocked = append(blocked, fmt.Sprintf("%s(#%d): %s", p.name, p.id, why))
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: s.now, Blocked: blocked}
	}
	return nil
}

// RunUntil drives the simulation until the clock would pass t or the queue
// drains. Events at exactly t still fire. It reports whether the queue
// drained (all work done).
func (s *Scheduler) RunUntil(t Time) bool {
	if s.running {
		panic("sim: Run called twice")
	}
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		e.fn()
	}
	if s.queue.Len() == 0 {
		s.running = true
		return true
	}
	return false
}

// timeNowUnixNano is a test seam for wall-clock access.
func timeNowUnixNano() int64 { return time.Now().UnixNano() }
