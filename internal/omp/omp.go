// Package omp provides OpenMP-like fork/join helpers over the simulation
// kernel: one-shot parallel regions and persistent thread teams with
// barriers, placed on the machine model so oversubscription and socket
// effects apply. It packages the idiom the benchmarks and examples use for
// "threads compute, then each contributes its partition".
package omp

import (
	"fmt"

	"partmb/internal/cluster"
	"partmb/internal/noise"
	"partmb/internal/sim"
)

// Region runs body(t) on n fresh worker procs and blocks the caller until
// all have finished — a one-shot `#pragma omp parallel`.
func Region(p *sim.Proc, n int, body func(tp *sim.Proc, t int)) {
	if n <= 0 {
		panic("omp: region needs at least one thread")
	}
	s := p.Scheduler()
	var join sim.WaitGroup
	join.Add(s, n)
	for t := 0; t < n; t++ {
		t := t
		s.Spawn(fmt.Sprintf("omp/%d", t), func(tp *sim.Proc) {
			body(tp, t)
			join.Done(s)
		})
	}
	join.Wait(p)
}

// ComputeRegion runs one noisy compute phase across n placed threads and
// then invokes each thread's continuation (typically Pready) — the paper's
// benchmark inner loop as one call. It returns the per-thread effective
// compute durations.
func ComputeRegion(p *sim.Proc, place *cluster.Placement, nm *noise.Model, base sim.Duration, then func(tp *sim.Proc, t int)) []sim.Duration {
	n := place.Threads()
	durations := nm.Region(n, base)
	effective := make([]sim.Duration, n)
	for t := range effective {
		effective[t] = place.ComputeTime(t, durations[t])
	}
	Region(p, n, func(tp *sim.Proc, t int) {
		tp.Sleep(effective[t])
		if then != nil {
			then(tp, t)
		}
	})
	return effective
}

// Team is a persistent set of worker procs driven through repeated steps —
// the long-lived parallel region the pattern motifs use. Workers live until
// Close.
type Team struct {
	n        int
	startBar *sim.Barrier
	doneBar  *sim.Barrier
	body     func(tp *sim.Proc, t int)
	closed   bool
}

// NewTeam spawns n persistent workers on the scheduler. Each Step, every
// worker runs the current body once; the body is set per step.
func NewTeam(s *sim.Scheduler, name string, n int) *Team {
	if n <= 0 {
		panic("omp: team needs at least one thread")
	}
	tm := &Team{
		n:        n,
		startBar: sim.NewBarrier(n + 1),
		doneBar:  sim.NewBarrier(n + 1),
	}
	for t := 0; t < n; t++ {
		t := t
		s.Spawn(fmt.Sprintf("omp/%s/%d", name, t), func(tp *sim.Proc) {
			for {
				tm.startBar.Await(tp)
				if tm.closed {
					return
				}
				tm.body(tp, t)
				tm.doneBar.Await(tp)
			}
		})
	}
	return tm
}

// Size returns the worker count.
func (tm *Team) Size() int { return tm.n }

// Step runs body once on every worker and blocks until all finish.
func (tm *Team) Step(p *sim.Proc, body func(tp *sim.Proc, t int)) {
	if tm.closed {
		panic("omp: Step on closed team")
	}
	if body == nil {
		panic("omp: nil step body")
	}
	tm.body = body
	tm.startBar.Await(p)
	tm.doneBar.Await(p)
}

// Close releases the workers. The team cannot be used afterwards.
func (tm *Team) Close(p *sim.Proc) {
	if tm.closed {
		panic("omp: Close on closed team")
	}
	tm.closed = true
	tm.startBar.Await(p)
}
