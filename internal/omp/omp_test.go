package omp

import (
	"testing"

	"partmb/internal/cluster"
	"partmb/internal/noise"
	"partmb/internal/sim"
)

func TestRegionJoinsAtSlowest(t *testing.T) {
	s := sim.New()
	var joinedAt sim.Time
	s.Spawn("main", func(p *sim.Proc) {
		Region(p, 4, func(tp *sim.Proc, th int) {
			tp.Sleep(sim.Duration(th+1) * sim.Millisecond)
		})
		joinedAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if joinedAt != sim.Time(4*sim.Millisecond) {
		t.Fatalf("joined at %v, want 4ms", joinedAt)
	}
}

func TestRegionThreadIndices(t *testing.T) {
	s := sim.New()
	seen := make([]bool, 8)
	s.Spawn("main", func(p *sim.Proc) {
		Region(p, 8, func(tp *sim.Proc, th int) {
			seen[th] = true
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for th, ok := range seen {
		if !ok {
			t.Fatalf("thread %d never ran", th)
		}
	}
}

func TestComputeRegionAppliesPlacementAndNoise(t *testing.T) {
	s := sim.New()
	place := cluster.Place(cluster.Niagara(), 64) // oversubscribed
	nm := noise.New(noise.None, 0, 1)
	var durations []sim.Duration
	var joinedAt sim.Time
	s.Spawn("main", func(p *sim.Proc) {
		durations = ComputeRegion(p, place, nm, 10*sim.Millisecond, nil)
		joinedAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Threads on shared cores take 2x; the join waits for them.
	if joinedAt != sim.Time(20*sim.Millisecond) {
		t.Fatalf("joined at %v, want 20ms (oversubscribed)", joinedAt)
	}
	if durations[0] != 20*sim.Millisecond || durations[30] != 10*sim.Millisecond {
		t.Fatalf("effective durations wrong: %v %v", durations[0], durations[30])
	}
}

func TestComputeRegionThen(t *testing.T) {
	s := sim.New()
	order := make([]sim.Time, 4)
	place := cluster.Place(cluster.Niagara(), 4)
	nm := noise.New(noise.None, 0, 1)
	s.Spawn("main", func(p *sim.Proc) {
		ComputeRegion(p, place, nm, sim.Millisecond, func(tp *sim.Proc, th int) {
			order[th] = tp.Now()
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for th, at := range order {
		if at != sim.Time(sim.Millisecond) {
			t.Fatalf("thread %d continuation at %v, want 1ms", th, at)
		}
	}
}

func TestTeamSteps(t *testing.T) {
	s := sim.New()
	var counts [3]int
	s.Spawn("main", func(p *sim.Proc) {
		tm := NewTeam(s, "t", 3)
		for step := 0; step < 5; step++ {
			tm.Step(p, func(tp *sim.Proc, th int) {
				tp.Sleep(sim.Microsecond)
				counts[th]++
			})
		}
		tm.Close(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for th, n := range counts {
		if n != 5 {
			t.Fatalf("worker %d ran %d steps, want 5", th, n)
		}
	}
}

func TestTeamVaryingBodies(t *testing.T) {
	s := sim.New()
	var a, b int
	s.Spawn("main", func(p *sim.Proc) {
		tm := NewTeam(s, "v", 2)
		tm.Step(p, func(tp *sim.Proc, th int) { a++ })
		tm.Step(p, func(tp *sim.Proc, th int) { b++ })
		tm.Close(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if a != 2 || b != 2 {
		t.Fatalf("bodies ran a=%d b=%d, want 2 each", a, b)
	}
}

func TestTeamMisuse(t *testing.T) {
	s := sim.New()
	s.Spawn("main", func(p *sim.Proc) {
		tm := NewTeam(s, "m", 2)
		mustPanic := func(name string, f func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}
		mustPanic("nil body", func() { tm.Step(p, nil) })
		tm.Close(p)
		mustPanic("step after close", func() { tm.Step(p, func(*sim.Proc, int) {}) })
		mustPanic("double close", func() { tm.Close(p) })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Constructor validation.
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size team did not panic")
		}
	}()
	NewTeam(s2(), "bad", 0)
}

func s2() *sim.Scheduler { return sim.New() }

func TestRegionZeroPanics(t *testing.T) {
	s := sim.New()
	var panicked bool
	s.Spawn("main", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		Region(p, 0, nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("zero-thread region did not panic")
	}
}
